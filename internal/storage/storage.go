// Package storage simulates the persistent layer under the engine: the
// HDFS-like store where shuffle map tasks commit their outputs (paper
// Sec. II-A: "shuffle maps always commit outputs into persistent storage")
// and where checkpoints are written. Data here survives cache eviction and
// executor failure; reading and writing it is charged disk/network time by
// the engine's cost model.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"stark/internal/record"
)

// ErrCorrupt marks a persisted block whose stored checksum no longer
// matches its contents. Readers must treat it like a missing block and take
// the lineage-recompute path, never return the bytes.
var ErrCorrupt = errors.New("storage: block checksum mismatch")

// CorruptError identifies the corrupt block so the engine can evict it
// before recomputing. It unwraps to ErrCorrupt.
type CorruptError struct {
	Checkpoint bool
	// Shuffle/MapPart locate a shuffle block (when !Checkpoint);
	// RDD/Part locate a checkpoint block.
	Shuffle, MapPart int
	RDD, Part        int
}

func (e *CorruptError) Error() string {
	if e.Checkpoint {
		return fmt.Sprintf("storage: checkpoint rdd %d partition %d checksum mismatch", e.RDD, e.Part)
	}
	return fmt.Sprintf("storage: shuffle %d map output %d checksum mismatch", e.Shuffle, e.MapPart)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Bucket is one (map partition → reduce partition) shuffle output file.
// The store stamps a content checksum at write time (sum); reads verify it,
// so a corrupted persisted block surfaces as an integrity error instead of
// silently wrong bytes. Buckets written through WriteMapOutputBatch also
// carry a span view into the columnar batch, so verification runs off the
// contiguous key slab instead of re-walking boxed records.
type Bucket struct {
	Data  []record.Record
	Bytes int64

	sum uint64
	// Columnar span view (batch rows [lo, hi)); nil for legacy row buckets.
	batch  *record.Batch
	lo, hi int32
}

// verify recomputes the bucket's checksum and compares it to the stamped
// one. Batch-backed buckets hash the key slab (no per-record byte-slice
// conversions); legacy buckets re-walk their rows.
func (b Bucket) verify() bool {
	if b.batch != nil {
		return b.sum == b.batch.KeySumRange(int(b.lo), int(b.hi))
	}
	return b.sum == sumRecords(b.Data)
}

// sumRecords computes the cheap integrity checksum stored with a persisted
// block: FNV-64a over the record keys plus the record count. It exists to
// catch *injected* corruption deterministically, not to survive adversarial
// collisions, so hashing values is deliberately skipped (values are
// arbitrary `any` and hashing them would dominate hot read paths). The hash
// is record.KeySum64, shared with the batch slab checksum so the per-record
// and columnar paths can never drift.
func sumRecords(data []record.Record) uint64 { return record.KeySum64(data) }

type shuffleState struct {
	numMaps    int
	numReduces int
	// outputs[mapPart][reducePart]
	outputs map[int]map[int]Bucket
	// byReduce indexes buckets per reduce partition in map-partition order,
	// so ReadReduce is O(buckets present) instead of O(numMaps) — essential
	// for the partition-count sweep (Fig. 7) at 10^5 partitions. Invalidated
	// by overwrites and rebuilt lazily.
	byReduce map[int][]reduceBucket
	dirty    bool
}

type reduceBucket struct {
	mapPart int
	b       Bucket
}

func (st *shuffleState) rebuildIndex() {
	//starklint:ignore hotalloc rebuild runs once per dirty shuffle, not per read — PrepareShuffleReads forces it on the event loop before fan-out and steady-state ReadReduce hits the cached index
	st.byReduce = make(map[int][]reduceBucket)
	for m := 0; m < st.numMaps; m++ {
		for r, b := range st.outputs[m] {
			st.byReduce[r] = append(st.byReduce[r], reduceBucket{mapPart: m, b: b})
		}
	}
	for r := range st.byReduce {
		bs := st.byReduce[r]
		//starklint:ignore hotalloc same amortized rebuild path: one boxing per reduce partition per dirty rebuild, off the steady-state read path
		sort.Slice(bs, func(i, j int) bool { return bs[i].mapPart < bs[j].mapPart })
	}
	st.dirty = false
}

type checkpointKey struct {
	rdd  int
	part int
}

// Op names a persistent-storage operation for fault-hook dispatch.
type Op string

// Storage operations a fault hook may intercept.
const (
	OpShuffleRead     Op = "shuffle-read"
	OpCheckpointRead  Op = "checkpoint-read"
	OpMapOutputWrite  Op = "map-output-write"
	OpCheckpointWrite Op = "checkpoint-write"
)

// Store is the persistent store. It is not safe for concurrent use; the
// discrete-event engine is single-threaded by construction.
type Store struct {
	shuffles    map[int]*shuffleState
	checkpoints map[checkpointKey]Bucket
	// cpBytes accumulates total checkpointed bytes ever written, the
	// quantity Fig. 18 plots.
	cpBytes int64
	// faultHook, when set, may veto an operation with a transient error
	// before it touches state (fault injection).
	faultHook func(Op) error
}

// NewStore returns an empty persistent store.
func NewStore() *Store {
	return &Store{
		shuffles:    make(map[int]*shuffleState),
		checkpoints: make(map[checkpointKey]Bucket),
	}
}

// SetFaultHook installs (or, with nil, removes) a hook consulted before
// every read and write; a non-nil return fails the operation transiently
// without touching state.
func (s *Store) SetFaultHook(h func(Op) error) { s.faultHook = h }

func (s *Store) injected(op Op) error {
	if s.faultHook == nil {
		return nil
	}
	return s.faultHook(op)
}

// RegisterShuffle declares a shuffle's geometry. Re-registering with the
// same geometry is a no-op; conflicting geometry is an error.
func (s *Store) RegisterShuffle(id, numMaps, numReduces int) error {
	if st, ok := s.shuffles[id]; ok {
		if st.numMaps != numMaps || st.numReduces != numReduces {
			return fmt.Errorf("storage: shuffle %d re-registered with different geometry", id)
		}
		return nil
	}
	s.shuffles[id] = &shuffleState{
		numMaps:    numMaps,
		numReduces: numReduces,
		outputs:    make(map[int]map[int]Bucket),
		byReduce:   make(map[int][]reduceBucket),
	}
	return nil
}

// WriteMapOutput commits one map task's buckets. Overwrites (speculative or
// recomputed tasks) are allowed and idempotent in effect.
func (s *Store) WriteMapOutput(id, mapPart int, buckets map[int]Bucket) error {
	if err := s.injected(OpMapOutputWrite); err != nil {
		return err
	}
	st, ok := s.shuffles[id]
	if !ok {
		return fmt.Errorf("storage: unknown shuffle %d", id)
	}
	if mapPart < 0 || mapPart >= st.numMaps {
		return fmt.Errorf("storage: shuffle %d map partition %d out of range [0,%d)", id, mapPart, st.numMaps)
	}
	cp := make(map[int]Bucket, len(buckets))
	for r, b := range buckets {
		if r < 0 || r >= st.numReduces {
			return fmt.Errorf("storage: shuffle %d reduce partition %d out of range [0,%d)", id, r, st.numReduces)
		}
		b.sum = sumRecords(b.Data)
		cp[r] = b
	}
	if _, overwrite := st.outputs[mapPart]; overwrite {
		st.dirty = true
	} else if !st.dirty {
		for r, b := range cp {
			st.byReduce[r] = append(st.byReduce[r], reduceBucket{mapPart: mapPart, b: b})
		}
	}
	st.outputs[mapPart] = cp
	return nil
}

// WriteMapOutputBatch commits one map task's buckets from a partitioned
// columnar batch: every bucket is a span view over one shared reordered row
// array and key slab, and checksums come off the slab instead of per-record
// re-hashing. Semantically identical to WriteMapOutput over the equivalent
// per-bucket row slices.
//
//starklint:hotpath
func (s *Store) WriteMapOutputBatch(id, mapPart int, pb *record.PartitionedBatch) error {
	if err := s.injected(OpMapOutputWrite); err != nil {
		return err
	}
	st, ok := s.shuffles[id]
	if !ok {
		return fmt.Errorf("storage: unknown shuffle %d", id)
	}
	if mapPart < 0 || mapPart >= st.numMaps {
		return fmt.Errorf("storage: shuffle %d map partition %d out of range [0,%d)", id, mapPart, st.numMaps)
	}
	rows := pb.Batch.Records()
	//starklint:ignore hotalloc the bucket map escapes into the shuffle index (one per map-task write, pre-sized to the span count); reusing a cleared map would alias live shuffle state
	cp := make(map[int]Bucket, len(pb.Spans))
	for _, sp := range pb.Spans {
		if sp.Part < 0 || sp.Part >= st.numReduces {
			return fmt.Errorf("storage: shuffle %d reduce partition %d out of range [0,%d)", id, sp.Part, st.numReduces)
		}
		cp[sp.Part] = Bucket{
			Data:  rows[sp.Lo:sp.Hi:sp.Hi],
			Bytes: sp.Bytes,
			sum:   pb.Batch.KeySumRange(int(sp.Lo), int(sp.Hi)),
			batch: pb.Batch,
			lo:    sp.Lo,
			hi:    sp.Hi,
		}
	}
	if _, overwrite := st.outputs[mapPart]; overwrite {
		st.dirty = true
	} else if !st.dirty {
		for r, b := range cp {
			st.byReduce[r] = append(st.byReduce[r], reduceBucket{mapPart: mapPart, b: b})
		}
	}
	st.outputs[mapPart] = cp
	return nil
}

// HasMapOutput reports whether a map partition's output is committed.
func (s *Store) HasMapOutput(id, mapPart int) bool {
	st, ok := s.shuffles[id]
	if !ok {
		return false
	}
	_, done := st.outputs[mapPart]
	return done
}

// ShuffleComplete reports whether every map partition has committed output,
// i.e. reducers can run. An unregistered shuffle is not complete.
func (s *Store) ShuffleComplete(id int) bool {
	st, ok := s.shuffles[id]
	if !ok {
		return false
	}
	return len(st.outputs) == st.numMaps
}

// MissingMapOutputs lists the map partitions that still need to run.
func (s *Store) MissingMapOutputs(id int) []int {
	st, ok := s.shuffles[id]
	if !ok {
		return nil
	}
	var missing []int
	for m := 0; m < st.numMaps; m++ {
		if _, done := st.outputs[m]; !done {
			missing = append(missing, m)
		}
	}
	return missing
}

// PrepareShuffleReads rebuilds every dirty per-reduce index up front so
// subsequent ReadReduce calls are pure reads. The engine calls it before
// dispatching a parallel batch: without it, the first reader of a dirty
// shuffle would rebuild the index while other goroutines read it.
func (s *Store) PrepareShuffleReads() {
	for _, st := range s.shuffles {
		if st.dirty {
			st.rebuildIndex()
		}
	}
}

// ReadReduce concatenates every map output bucket for one reduce partition,
// returning the records and total bytes fetched. It fails if the shuffle is
// incomplete, because a real reducer would block.
//
//starklint:hotpath
func (s *Store) ReadReduce(id, reducePart int) ([]record.Record, int64, error) {
	if err := s.injected(OpShuffleRead); err != nil {
		return nil, 0, err
	}
	st, ok := s.shuffles[id]
	if !ok {
		return nil, 0, fmt.Errorf("storage: unknown shuffle %d", id)
	}
	if len(st.outputs) != st.numMaps {
		return nil, 0, fmt.Errorf("storage: shuffle %d incomplete: %d/%d map outputs", id, len(st.outputs), st.numMaps)
	}
	if st.dirty {
		st.rebuildIndex()
	}
	// Verify first, then concatenate into an exact-size slice: the append
	// loop used to re-grow out log(n) times, and verification re-hashed every
	// record through a byte-slice conversion. The error surfaced (first
	// corrupt bucket in map-partition order) is unchanged.
	bs := st.byReduce[reducePart]
	total := 0
	var bytes int64
	for _, rb := range bs {
		if !rb.b.verify() {
			return nil, 0, &CorruptError{Shuffle: id, MapPart: rb.mapPart}
		}
		total += len(rb.b.Data)
		bytes += rb.b.Bytes
	}
	if total == 0 {
		return nil, bytes, nil
	}
	out := make([]record.Record, 0, total)
	for _, rb := range bs {
		out = append(out, rb.b.Data...)
	}
	return out, bytes, nil
}

// WriteCheckpoint persists one partition of an RDD and accounts its bytes
// toward the running checkpoint total.
func (s *Store) WriteCheckpoint(rdd, part int, data []record.Record, bytes int64) error {
	if err := s.injected(OpCheckpointWrite); err != nil {
		return err
	}
	k := checkpointKey{rdd: rdd, part: part}
	if old, ok := s.checkpoints[k]; ok {
		s.cpBytes -= old.Bytes
	}
	s.checkpoints[k] = Bucket{Data: data, Bytes: bytes, sum: sumRecords(data)}
	s.cpBytes += bytes
	return nil
}

// HasCheckpoint reports whether a partition checkpoint exists.
func (s *Store) HasCheckpoint(rdd, part int) bool {
	_, ok := s.checkpoints[checkpointKey{rdd: rdd, part: part}]
	return ok
}

// ReadCheckpoint loads a partition checkpoint.
func (s *Store) ReadCheckpoint(rdd, part int) ([]record.Record, int64, error) {
	if err := s.injected(OpCheckpointRead); err != nil {
		return nil, 0, err
	}
	b, ok := s.checkpoints[checkpointKey{rdd: rdd, part: part}]
	if !ok {
		return nil, 0, fmt.Errorf("storage: no checkpoint for rdd %d partition %d", rdd, part)
	}
	if !b.verify() {
		return nil, 0, &CorruptError{Checkpoint: true, RDD: rdd, Part: part}
	}
	return b.Data, b.Bytes, nil
}

// TotalCheckpointBytes reports cumulative live checkpoint bytes.
func (s *Store) TotalCheckpointBytes() int64 { return s.cpBytes }

// DropShuffle discards a shuffle's outputs (dataset eviction).
func (s *Store) DropShuffle(id int) { delete(s.shuffles, id) }

// DropMapOutput discards one committed map output (simulated block loss);
// the shuffle becomes incomplete until the partition is recomputed. It
// reports whether an output was actually dropped.
func (s *Store) DropMapOutput(id, mapPart int) bool {
	st, ok := s.shuffles[id]
	if !ok {
		return false
	}
	if _, done := st.outputs[mapPart]; !done {
		return false
	}
	delete(st.outputs, mapPart)
	st.dirty = true
	return true
}

// DropCheckpoint discards one partition checkpoint (simulated block loss),
// subtracting its bytes from the running total. It reports whether a
// checkpoint was actually dropped.
func (s *Store) DropCheckpoint(rdd, part int) bool {
	k := checkpointKey{rdd: rdd, part: part}
	b, ok := s.checkpoints[k]
	if !ok {
		return false
	}
	s.cpBytes -= b.Bytes
	delete(s.checkpoints, k)
	return true
}

// CommittedMapOutputs enumerates every committed (shuffle, mapPart) pair in
// ascending order — the fault injector's sampling space for block loss.
func (s *Store) CommittedMapOutputs() [][2]int {
	ids := make([]int, 0, len(s.shuffles))
	for id := range s.shuffles {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out [][2]int
	for _, id := range ids {
		st := s.shuffles[id]
		for m := 0; m < st.numMaps; m++ {
			if _, done := st.outputs[m]; done {
				out = append(out, [2]int{id, m})
			}
		}
	}
	return out
}

// CheckpointBlocks enumerates every (rdd, partition) checkpoint in ascending
// order — the fault injector's sampling space for checkpoint loss.
func (s *Store) CheckpointBlocks() [][2]int {
	out := make([][2]int, 0, len(s.checkpoints))
	for k := range s.checkpoints {
		out = append(out, [2]int{k.rdd, k.part})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// CorruptMapOutput flips the stored checksum of one committed map output
// (simulated bit rot of a persisted shuffle block); the next ReadReduce
// touching it fails with a CorruptError. It reports whether the output
// existed. A later overwrite (recomputed map task) restores integrity.
func (s *Store) CorruptMapOutput(id, mapPart int) bool {
	st, ok := s.shuffles[id]
	if !ok {
		return false
	}
	buckets, done := st.outputs[mapPart]
	if !done {
		return false
	}
	for r, b := range buckets {
		b.sum ^= 0xdeadbeef
		buckets[r] = b
	}
	// The byReduce index holds bucket copies; force a rebuild so readers see
	// the corrupted sums.
	st.dirty = true
	return true
}

// CorruptCheckpoint flips the stored checksum of one checkpoint block; the
// next ReadCheckpoint fails with a CorruptError until the partition is
// re-checkpointed. It reports whether the checkpoint existed.
func (s *Store) CorruptCheckpoint(rdd, part int) bool {
	k := checkpointKey{rdd: rdd, part: part}
	b, ok := s.checkpoints[k]
	if !ok {
		return false
	}
	b.sum ^= 0xdeadbeef
	s.checkpoints[k] = b
	return true
}

// DropCheckpoints discards all checkpoints of an RDD, subtracting their
// bytes from the running total.
func (s *Store) DropCheckpoints(rdd int) {
	for k, b := range s.checkpoints {
		if k.rdd == rdd {
			s.cpBytes -= b.Bytes
			delete(s.checkpoints, k)
		}
	}
}
