package stark

import (
	"stark/internal/rdd"
)

// internalRDD aliases the lineage node type for the public wrapper.
type internalRDD = rdd.RDD

// RDD is a handle on one immutable, partitioned dataset in the lineage
// graph. Transformations are lazy: they extend the graph and return new
// handles; actions (Count, Collect, Materialize) run jobs on the simulated
// cluster and advance virtual time.
type RDD struct {
	ctx *Context
	r   *internalRDD
}

// Name returns the RDD's name and id.
func (r *RDD) Name() string { return r.r.String() }

// NumPartitions reports the partition count.
func (r *RDD) NumPartitions() int { return r.r.Parts }

// PartitionSizes returns the simulated byte size of each partition, nil
// before first materialization.
func (r *RDD) PartitionSizes() []int64 {
	if r.r.PartBytes == nil {
		return nil
	}
	out := make([]int64, len(r.r.PartBytes))
	copy(out, r.r.PartBytes)
	return out
}

// Map applies f to every record. The result loses partitioning, since f
// may change keys; use MapValues when keys are stable.
func (r *RDD) Map(f func(Record) Record) *RDD {
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().Map(r.r, "map", false, f)}
}

// MapValues applies f to every record, promising keys are unchanged:
// partitioning and the locality namespace carry over.
func (r *RDD) MapValues(f func(Record) Record) *RDD {
	nr := r.ctx.eng.Graph().Map(r.r, "mapValues", true, f)
	r.ctx.eng.TrackNamespaceRDD(nr)
	return &RDD{ctx: r.ctx, r: nr}
}

// FlatMap applies f and concatenates the outputs.
func (r *RDD) FlatMap(f func(Record) []Record) *RDD {
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().FlatMap(r.r, "flatMap", f)}
}

// Filter keeps records satisfying pred; partitioning is preserved.
func (r *RDD) Filter(pred func(Record) bool) *RDD {
	nr := r.ctx.eng.Graph().Filter(r.r, "filter", pred)
	r.ctx.eng.TrackNamespaceRDD(nr)
	return &RDD{ctx: r.ctx, r: nr}
}

// PartitionBy repartitions by p through a shuffle.
func (r *RDD) PartitionBy(p Partitioner) *RDD {
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().PartitionBy(r.r, "partitionBy", p)}
}

// LocalityPartitionBy repartitions by p and registers the result (and its
// narrow descendants) under namespace ns for co-locality — the paper's
// localityPartitionBy(p, ns) API. The namespace must have been registered
// with an equivalent partitioner via Context.RegisterNamespace.
func (r *RDD) LocalityPartitionBy(p Partitioner, ns string) *RDD {
	nr := r.ctx.eng.Graph().LocalityPartitionBy(r.r, "localityPartitionBy", p, ns)
	r.ctx.eng.TrackNamespaceRDD(nr)
	return &RDD{ctx: r.ctx, r: nr}
}

// ReduceByKey shuffles by p and merges values per key.
func (r *RDD) ReduceByKey(p Partitioner, merge func(a, b any) any) *RDD {
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().ReduceByKey(r.r, "reduceByKey", p, merge)}
}

// CoGroup groups this RDD with others by key (see Context.CoGroup).
func (r *RDD) CoGroup(p Partitioner, others ...*RDD) *RDD {
	all := append([]*RDD{r}, others...)
	return r.ctx.CoGroup(p, all...)
}

// Join inner-joins with another RDD (see Context.Join).
func (r *RDD) Join(p Partitioner, other *RDD) *RDD {
	return r.ctx.Join(p, r, other)
}

// Union concatenates this RDD with others; the result has the sum of the
// partition counts and no partitioner (Spark semantics).
func (r *RDD) Union(others ...*RDD) *RDD {
	parents := make([]*internalRDD, 0, len(others)+1)
	parents = append(parents, r.r)
	for _, o := range others {
		parents = append(parents, o.r)
	}
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().Union("union", parents...)}
}

// Distinct keeps one record per key, partitioned by p.
func (r *RDD) Distinct(p Partitioner) *RDD {
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().Distinct(r.r, "distinct", p)}
}

// GroupByKey groups all values per key into []any values, partitioned by
// p; it stays narrow when this RDD is already partitioned equivalently.
func (r *RDD) GroupByKey(p Partitioner) *RDD {
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().GroupByKey(r.r, "groupByKey", p)}
}

// Sample keeps approximately frac of the records, deterministically by key
// hash (salt varies the subset); partitioning is preserved.
func (r *RDD) Sample(frac float64, salt uint32) *RDD {
	nr := r.ctx.eng.Graph().Sample(r.r, "sample", frac, salt)
	r.ctx.eng.TrackNamespaceRDD(nr)
	return &RDD{ctx: r.ctx, r: nr}
}

// Cache marks the RDD for in-memory caching on first materialization and
// returns the same handle for chaining.
func (r *RDD) Cache() *RDD {
	r.r.CacheFlag = true
	return r
}

// Checkpoint persists the materialized RDD to stable storage immediately
// (the paper's RDD.forceCheckpoint): later jobs start from the checkpoint
// and the lineage behind it is never recomputed. It is a no-op for RDDs
// that have not been materialized yet.
func (r *RDD) Checkpoint() *RDD {
	r.ctx.eng.ForceCheckpoint(r.r)
	return r
}

// IsCheckpointed reports whether a checkpoint exists.
func (r *RDD) IsCheckpointed() bool { return r.r.Checkpointed }

// Count runs a job that counts records, returning the count, the job's
// virtual-time stats, and any scheduling error.
func (r *RDD) Count() (int64, JobStats, error) {
	return r.ctx.eng.Count(r.r)
}

// MustCount is Count for tests and examples where failure is fatal.
func (r *RDD) MustCount() int64 {
	n, _, err := r.Count()
	if err != nil {
		panic(err)
	}
	return n
}

// Collect runs a job returning all records.
func (r *RDD) Collect() ([]Record, JobStats, error) {
	return r.ctx.eng.Collect(r.r)
}

// Materialize computes (and caches, if requested) every partition without
// returning data.
func (r *RDD) Materialize() (JobStats, error) {
	return r.ctx.eng.Materialize(r.r)
}

// Internal exposes the lineage node for the experiment harness.
func (r *RDD) Internal() *internalRDD { return r.r }

// Wrap adopts an internal lineage node into a public handle (experiment
// harness use).
func (c *Context) Wrap(r *internalRDD) *RDD { return &RDD{ctx: c, r: r} }

// Unpersist drops the RDD's cached blocks across the cluster and clears its
// cache flag — the "evict" half of a dynamic dataset collection. The data
// remains recomputable through lineage, persisted shuffle outputs, and
// checkpoints.
func (r *RDD) Unpersist() *RDD {
	r.ctx.eng.Unpersist(r.r)
	return r
}

// SortByKey range-partitions by boundaries fitted to the sample and sorts
// within partitions, yielding globally sorted keys across partition order
// (Spark's sortByKey).
func (r *RDD) SortByKey(sample []string, parts int) *RDD {
	return &RDD{ctx: r.ctx, r: r.ctx.eng.Graph().SortByKey(r.r, "sortByKey", sample, parts)}
}
