// Logmining: the paper's Sec. IV-B scenario. An operator loads a dynamic
// collection of hourly Wikipedia request logs and runs interactive keyword
// queries that cogroup several hours at once. With co-locality enabled,
// partition i of every hour lands on the same executor, so the cogroup
// never touches the network; run with -colocality=false to watch the same
// queries recompute partitions from shuffle outputs instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stark"
)

func run(colocality bool, hours, cogroupK int) error {
	opts := []stark.Option{
		stark.WithExecutors(8),
		stark.WithSlots(4),
		stark.WithSizeScale(420), // ~800 MB per simulated hourly log
		stark.WithMemory(3 << 30),
	}
	if colocality {
		opts = append(opts, stark.WithCoLocality())
	}
	ctx := stark.NewContext(opts...)

	p := stark.NewHashPartitioner(8)
	const ns = "wiki-logs"
	if err := ctx.RegisterNamespace(ns, p, 1); err != nil {
		return err
	}

	gen := stark.DefaultWikipediaTrace()
	var collection []*stark.RDD
	for h := 0; h < hours; h++ {
		raw := ctx.TextFile(fmt.Sprintf("hour-%02d.log", h), gen.Hour(h), 8)
		var rdd *stark.RDD
		if colocality {
			rdd = raw.LocalityPartitionBy(p, ns)
		} else {
			rdd = raw.PartitionBy(p)
		}
		rdd.Cache()
		if _, err := rdd.Materialize(); err != nil {
			return err
		}
		collection = append(collection, rdd)
		fmt.Printf("loaded hour %d (%d requests)\n", h, len(gen.Hour(h)))
	}

	for _, keyword := range []string{"article-00001", "article-001", "article-1"} {
		kw := keyword
		matches := ctx.CoGroup(p, collection[:cogroupK]...).Filter(func(r stark.Record) bool {
			return strings.Contains(r.Key, kw)
		})
		n, stats, err := matches.Count()
		if err != nil {
			return err
		}
		fmt.Printf("query %-14q over %d hours: %5d urls, %8v, locality %3.0f%%\n",
			kw, cogroupK, n, stats.Makespan(), stats.LocalityFraction()*100)
	}
	return nil
}

func main() {
	colocality := flag.Bool("colocality", true, "enable Stark's LocalityManager")
	hours := flag.Int("hours", 6, "hourly logs to load")
	k := flag.Int("cogroup", 5, "hours per query")
	flag.Parse()
	if *k > *hours {
		*k = *hours
	}
	if err := run(*colocality, *hours, *k); err != nil {
		fmt.Fprintln(os.Stderr, "logmining:", err)
		os.Exit(1)
	}
}
