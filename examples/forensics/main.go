// Forensics: the paper's IT-diagnosis scenario (Sec. I). An administrator
// investigates an incident by dynamically LOADING per-service log datasets
// into a co-located namespace, running interactive cross-dataset queries,
// and EVICTING datasets that turn out to be irrelevant — the "dynamic
// dataset collection" in its purest form. Watch the cache hit rate stay
// high while the collection churns.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stark"
	"stark/internal/workload"
)

func run(windows int) error {
	ctx := stark.NewContext(
		stark.WithCoLocality(),
		stark.WithMCF(),
		stark.WithExecutors(8),
		stark.WithSlots(4),
		stark.WithSizeScale(420),
	)
	p := stark.NewHashPartitioner(16)
	const ns = "logs"
	if err := ctx.RegisterNamespace(ns, p, 1); err != nil {
		return err
	}

	gen := workload.DefaultSyslog()
	loaded := map[string]*stark.RDD{} // "service/window" -> dataset

	load := func(service string, window int) (*stark.RDD, error) {
		key := fmt.Sprintf("%s/w%d", service, window)
		if r, ok := loaded[key]; ok {
			return r, nil
		}
		r := ctx.FromPartitions(key, chunk(gen.Dataset(service, window), 8), true).
			LocalityPartitionBy(p, ns).Cache()
		if _, err := r.Materialize(); err != nil {
			return nil, err
		}
		loaded[key] = r
		fmt.Printf("loaded  %s\n", key)
		return r, nil
	}
	evict := func(key string) {
		if r, ok := loaded[key]; ok {
			r.Unpersist()
			delete(loaded, key)
			fmt.Printf("evicted %s\n", key)
		}
	}

	errorCount := func(rdds ...*stark.RDD) (int64, stark.JobStats, error) {
		q := ctx.CoGroup(p, rdds...).Filter(func(r stark.Record) bool {
			cg := r.Value.(stark.CoGrouped)
			for _, g := range cg.Groups {
				for _, v := range g {
					if s, ok := v.(string); ok && strings.HasPrefix(s, "ERROR") {
						return true
					}
				}
			}
			return false
		})
		return q.Count()
	}

	// Step 1: the pager fired during window 2. Pull the api logs around it.
	var apiLogs []*stark.RDD
	for w := 1; w <= 3 && w < windows; w++ {
		r, err := load("api", w)
		if err != nil {
			return err
		}
		apiLogs = append(apiLogs, r)
	}
	n, jm, err := errorCount(apiLogs...)
	if err != nil {
		return err
	}
	fmt.Printf("query 1: api hosts with errors in w1-w3: %d (%v, locality %.0f%%)\n",
		n, jm.Makespan(), jm.LocalityFraction()*100)

	// Step 2: correlate with the db tier at the incident window.
	db2, err := load("db", 2)
	if err != nil {
		return err
	}
	n, jm, err = errorCount(apiLogs[1], db2)
	if err != nil {
		return err
	}
	fmt.Printf("query 2: hosts with api+db errors in w2: %d (%v)\n", n, jm.Makespan())

	// Step 3: the cache tier looks innocent — load it, check, evict it.
	cache2, err := load("cache", 2)
	if err != nil {
		return err
	}
	n, _, err = errorCount(cache2)
	if err != nil {
		return err
	}
	fmt.Printf("query 3: cache hosts with errors in w2: %d -> not involved\n", n)
	evict("cache/w2")
	evict("api/w1")

	// Step 4: re-run the correlated query on the trimmed collection.
	n, jm, err = errorCount(apiLogs[1], db2)
	if err != nil {
		return err
	}
	fmt.Printf("query 4 (after eviction): %d hosts (%v, locality %.0f%%)\n",
		n, jm.Makespan(), jm.LocalityFraction()*100)

	st := ctx.Stats()
	fmt.Printf("session: %s\n", st)
	return nil
}

func chunk(recs []stark.Record, n int) [][]stark.Record {
	out := make([][]stark.Record, n)
	for i, r := range recs {
		out[i*n/len(recs)] = append(out[i*n/len(recs)], r)
	}
	return out
}

func main() {
	windows := flag.Int("windows", 4, "log windows available")
	flag.Parse()
	if err := run(*windows); err != nil {
		fmt.Fprintln(os.Stderr, "forensics:", err)
		os.Exit(1)
	}
}
