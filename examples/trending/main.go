// Trending: the paper's Fig. 16 application — a Twitter-trends-style job
// that tracks popular keys and their contents across timesteps. Each step
// chains onto the previous one (runningReduce), growing the lineage without
// bound; Stark's CheckpointOptimizer keeps failure recovery bounded by
// min-cut-selecting the cheapest RDDs to persist. A mid-run executor
// failure demonstrates recovery.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stark"
	"stark/internal/trending"
)

func run(steps int, bound time.Duration, relax float64) error {
	ctx := stark.NewContext(
		stark.WithCoLocality(),
		stark.WithExecutors(8),
		stark.WithSlots(4),
		stark.WithSizeScale(420),
		stark.WithCheckpointing(bound, relax),
	)
	p := stark.NewHashPartitioner(8)
	if err := ctx.RegisterNamespace("trend", p, 1); err != nil {
		return err
	}
	cfg := trending.DefaultConfig(p)
	cfg.Namespace = "trend"
	cfg.PopularThreshold = 4
	app := trending.New(ctx, cfg)

	gen := stark.DefaultWikipediaTrace()
	gen.RequestsPerHour = 10000
	for s := 0; s < steps; s++ {
		raw := gen.Hour(s)
		keyed := make([]stark.Record, len(raw))
		for i, r := range raw {
			k := r.Key
			if len(k) > 17 {
				k = k[:17]
			}
			keyed[i] = stark.Pair(k, r.Value)
		}
		out, err := app.Step(keyed)
		if err != nil {
			return err
		}
		popular, _, err := out.ACnt.Count()
		if err != nil {
			return err
		}
		fmt.Printf("step %2d: %4d trending keys | checkpointed so far: %4d MB\n",
			s, popular, ctx.TotalCheckpointBytes()>>20)

		if s == steps/2 {
			fmt.Println("-- killing executor 3; lineage recovery takes over --")
			ctx.KillExecutor(3)
		}
	}
	return nil
}

func main() {
	steps := flag.Int("steps", 10, "timesteps to run")
	bound := flag.Duration("bound", 3200*time.Millisecond, "recovery delay bound r")
	relax := flag.Float64("relax", 1, "checkpoint cost relaxation f (>= 1)")
	flag.Parse()
	if err := run(*steps, *bound, *relax); err != nil {
		fmt.Fprintln(os.Stderr, "trending:", err)
		os.Exit(1)
	}
}
