// Taxiads: the paper's Sec. III-C scenario. A taxi-advertising pipeline
// streams five-minute batches of pick-up/drop-off events keyed by Z-order
// cell, keeps a three-hour window, and answers region-scoped queries. As
// the day progresses the hotspot mix drifts (Fig. 6), and with extendable
// partitioning enabled the Group Tree splits hot groups and merges cold
// ones without repartitioning a single record.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"stark"
)

func run(hoursToReplay int) error {
	ctx := stark.NewContext(
		stark.WithExtendable(stark.GroupBounds(96<<20, 24<<20, 12)),
		stark.WithMCF(),
		stark.WithExecutors(16),
		stark.WithSlots(4),
		stark.WithSizeScale(300),
	)

	grid := stark.NewZGrid(64)
	const fineParts = 128
	bounds := make([]string, 0, fineParts-1)
	for i := 1; i < fineParts; i++ {
		// Spread boundaries over the grid's Z-code range.
		frac := float64(i) / fineParts
		bounds = append(bounds, grid.Key(frac, frac))
	}
	// NOTE: grid.Key(frac, frac) walks the curve's diagonal; for exactly even
	// bounds use the benchmark harness. Close enough for a demo.
	p := stark.NewStaticRangePartitioner(bounds)

	s, err := ctx.NewStream(stark.StreamConfig{
		Name:          "taxi",
		Partitioner:   p,
		Namespace:     "taxi",
		InitialGroups: 16,
		Window:        36,
		ReportSizes:   true,
	})
	if err != nil {
		return err
	}

	taxi := stark.DefaultTaxiTrace()
	tweets := stark.DefaultTwitterTrace()
	rng := rand.New(rand.NewSource(7))

	stepsPerHour := taxi.StepsPerHour
	step := 0
	for hour := 0; hour < hoursToReplay; hour++ {
		for i := 0; i < stepsPerHour; i++ {
			s.Ingest(step, stark.MergedTaxiTweets(taxi, tweets, step))
			ctx.Drain()
			step++
		}
		groups, err := ctx.GroupList("taxi")
		if err != nil {
			return err
		}
		// One advertising query: trips in a random region over the last hour.
		window := s.Recent(stepsPerHour)
		lo, hi := grid.RandomRegion(rng, 2)
		q := ctx.CoGroup(p, window...).Filter(func(r stark.Record) bool {
			return r.Key >= lo && r.Key <= hi
		})
		n, stats, err := q.Count()
		if err != nil {
			return err
		}
		fmt.Printf("hour %2d: %3d partition groups | region query: %4d cells, %7v, locality %3.0f%%\n",
			hour, len(groups), n, stats.Makespan(), stats.LocalityFraction()*100)
	}
	return nil
}

func main() {
	hours := flag.Int("hours", 8, "hours of trace to replay")
	flag.Parse()
	if err := run(*hours); err != nil {
		fmt.Fprintln(os.Stderr, "taxiads:", err)
		os.Exit(1)
	}
}
