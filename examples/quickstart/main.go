// Quickstart: the smallest useful Stark program. It builds a dataset,
// partitions and caches it, runs filters, and shows the cached-vs-violated
// locality gap from the paper's Fig. 1 — all on the simulated cluster, in
// virtual time.
package main

import (
	"fmt"
	"os"
	"strings"

	"stark"
)

func run() error {
	ctx := stark.NewContext(
		stark.WithExecutors(8),
		stark.WithSlots(4),
		stark.WithSizeScale(5000), // each in-process byte stands for 5 kB
	)

	// A log file with one ERROR line in ten.
	var lines []stark.Record
	for i := 0; i < 20000; i++ {
		sev := "INFO"
		if i%10 == 0 {
			sev = "ERROR"
		}
		lines = append(lines, stark.Pair(
			fmt.Sprintf("12:%02d:%02d", i/60%60, i%60),
			fmt.Sprintf("%s request-%06d served in %dms", sev, i, i%500),
		))
	}

	// textFile -> partitionBy -> filter, like the paper's Fig. 1 chain.
	logs := ctx.TextFile("app.log", lines, 8)
	byTime := logs.PartitionBy(stark.NewHashPartitioner(8))
	errors := byTime.Filter(func(r stark.Record) bool {
		s, _ := r.Value.(string)
		return strings.HasPrefix(s, "ERROR")
	}).Cache()

	n, stats, err := errors.Count()
	if err != nil {
		return err
	}
	fmt.Printf("errors.count() = %d   (cold: %v, %d tasks)\n", n, stats.Makespan(), len(stats.Tasks))

	// The second pass starts from the cached RDD: compare makespans.
	slow := errors.Filter(func(r stark.Record) bool {
		s, _ := r.Value.(string)
		return strings.Contains(s, "served in 4")
	})
	n2, stats2, err := slow.Count()
	if err != nil {
		return err
	}
	fmt.Printf("slowErrors.count() = %d (cached: %v, locality %.0f%%)\n",
		n2, stats2.Makespan(), stats2.LocalityFraction()*100)
	fmt.Printf("speedup from data locality: %.1fx\n",
		stats.Makespan().Seconds()/stats2.Makespan().Seconds())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
