// Pagerank: an iterative application on the engine, the workload class the
// paper cites for "interactive and iterative applications [that] require
// running a series of jobs on the same set of data". Links and ranks share
// a partitioner, so each iteration's join is narrow; the flatMap +
// reduceByKey pair shuffles contributions exactly like Spark's classic
// PageRank. Every few iterations the rank RDD is checkpointed to keep the
// growing lineage recoverable.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"stark"
)

const damping = 0.85

func buildGraph(rng *rand.Rand, nodes, avgDegree int) []stark.Record {
	recs := make([]stark.Record, nodes)
	for i := 0; i < nodes; i++ {
		degree := 1 + rng.Intn(2*avgDegree)
		outs := make([]any, degree)
		for d := range outs {
			// Preferential-ish attachment: low ids are popular.
			target := rng.Intn(1+rng.Intn(nodes)) % nodes
			outs[d] = nodeKey(target)
		}
		recs[i] = stark.Pair(nodeKey(i), outs)
	}
	return recs
}

func nodeKey(i int) string { return fmt.Sprintf("n%05d", i) }

func run(nodes, iterations int) error {
	ctx := stark.NewContext(
		stark.WithCoLocality(),
		stark.WithExecutors(8),
		stark.WithSlots(4),
		stark.WithSeed(42),
	)
	p := stark.NewHashPartitioner(8)
	if err := ctx.RegisterNamespace("graph", p, 1); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))

	links := ctx.Parallelize("links", buildGraph(rng, nodes, 4), 8).
		LocalityPartitionBy(p, "graph").Cache()
	if _, err := links.Materialize(); err != nil {
		return err
	}

	var initial []stark.Record
	for i := 0; i < nodes; i++ {
		initial = append(initial, stark.Pair(nodeKey(i), 1.0))
	}
	ranks := ctx.Parallelize("ranks0", initial, 8).PartitionBy(p).Cache()

	for it := 1; it <= iterations; it++ {
		contribs := ctx.Join(p, links, ranks).FlatMap(func(r stark.Record) []stark.Record {
			j := r.Value.(stark.Joined)
			outs := j.Left.([]any)
			rank := j.Right.(float64)
			share := rank / float64(len(outs))
			recs := make([]stark.Record, len(outs))
			for i, o := range outs {
				recs[i] = stark.Pair(o.(string), share)
			}
			return recs
		})
		ranks = contribs.ReduceByKey(p, func(a, b any) any {
			return a.(float64) + b.(float64)
		}).MapValues(func(r stark.Record) stark.Record {
			return stark.Pair(r.Key, (1-damping)+damping*r.Value.(float64))
		}).Cache()

		_, stats, err := ranks.Count()
		if err != nil {
			return err
		}
		fmt.Printf("iteration %2d: %v (virtual)\n", it, stats.Makespan())

		if it%3 == 0 {
			ranks.Checkpoint()
			fmt.Printf("  checkpointed ranks (total %d MB persisted)\n", ctx.TotalCheckpointBytes()>>20)
		}
	}

	recs, _, err := ranks.Collect()
	if err != nil {
		return err
	}
	sort.Slice(recs, func(i, j int) bool {
		return recs[i].Value.(float64) > recs[j].Value.(float64)
	})
	fmt.Println("top ranks:")
	for i := 0; i < 5 && i < len(recs); i++ {
		fmt.Printf("  %s %.4f\n", recs[i].Key, recs[i].Value.(float64))
	}
	return nil
}

func main() {
	nodes := flag.Int("nodes", 2000, "graph size")
	iterations := flag.Int("iterations", 8, "power iterations")
	flag.Parse()
	if err := run(*nodes, *iterations); err != nil {
		fmt.Fprintln(os.Stderr, "pagerank:", err)
		os.Exit(1)
	}
}
