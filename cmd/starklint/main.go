// Command starklint runs the Stark repo's custom static-analysis suite: the
// determinism, purity, and plane-isolation contracts that the runtime
// oracles (parallelism-1-vs-N byte equality, STARK_CHECK_COW, the chaos
// harness) check dynamically, enforced at build time instead.
//
// Usage:
//
//	starklint [packages]
//
// Packages default to ./... and use go-list pattern syntax. Non-test Go
// files of every matched package are parsed and type-checked (against
// build-cache export data, so the tree must compile), then run through the
// five analyzers:
//
//	wallclock   — no time.Now/Since/Sleep/... in deterministic packages
//	globalrand  — no package-level math/rand draws; seeded *rand.Rand only
//	mapiter     — no map-range loops feeding ordered state without a sort
//	cowpurity   — no mutation of copy-on-write records in transform closures
//	planesafety — no control-plane mutation from data-plane code
//
// Findings print as file:line:col: analyzer: message. A finding is
// suppressed by
//
//	//starklint:ignore <analyzer> <reason>
//
// on the same line or the line directly above; the reason is mandatory.
// Exit status: 0 clean, 1 unsuppressed findings, 2 load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"stark/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: starklint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starklint:", err)
		os.Exit(2)
	}

	cfg := lint.DefaultConfig()
	analyzers := lint.Analyzers()
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, cfg, analyzers) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "starklint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
