// Command starklint runs the Stark repo's custom static-analysis suite: the
// determinism, purity, and plane-isolation contracts that the runtime
// oracles (parallelism-1-vs-N byte equality, STARK_CHECK_COW, the chaos
// harness, the bench_budget.json allocs/op gate) check dynamically,
// enforced at build time instead.
//
// Usage:
//
//	starklint [flags] [packages]
//
// Packages default to ./... and use go-list pattern syntax. Non-test Go
// files of every matched package are parsed and type-checked (against
// build-cache export data, so the tree must compile), then run through the
// per-package analyzers:
//
//	wallclock   — no time.Now/Since/Sleep/... in deterministic packages
//	globalrand  — no package-level math/rand draws; seeded *rand.Rand only
//	mapiter     — no map-range loops feeding ordered state without a sort
//	cowpurity   — no mutation of copy-on-write records in transform closures
//
// and, over the module-wide call graph built across every loaded package,
// the interprocedural analyzers:
//
//	planetaint  — no transitive control-plane mutation from data-plane
//	              roots (runPlane, planeCtx methods, hotpath kernels)
//	              outside the px.immediate guard
//	hotalloc    — no allocation-inducing constructs reachable from
//	              //starklint:hotpath kernels (boxing, per-call maps,
//	              empty-slice append growth, Sprintf/concatenation)
//	errwrap     — no %v/%s flattening of error operands, no wrapper error
//	              type without Unwrap: typed sentinels stay errors.Is-able
//
// Findings print as file:line:col: analyzer: message, or with -json as one
// JSON object per line ({file, line, col, analyzer, message}). A finding is
// suppressed by
//
//	//starklint:ignore <analyzer> <reason>
//
// on the same line, the line directly above, or trailing a multi-line
// expression the finding anchors to; the reason is mandatory.
// Exit status: 0 clean, 1 unsuppressed findings, 2 load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stark/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: starklint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.ModuleAnalyzers() {
			fmt.Printf("%-12s %s (module-wide)\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starklint:", err)
		os.Exit(2)
	}

	cfg := lint.DefaultConfig()
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.Run(pkg, cfg, lint.Analyzers())...)
	}
	diags = append(diags, lint.RunModule(pkgs, cfg, lint.ModuleAnalyzers())...)

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *asJSON {
			if err := enc.Encode(d); err != nil {
				fmt.Fprintln(os.Stderr, "starklint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "starklint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
