// Command starksh is a tiny interactive shell over a Stark context: load
// hourly log datasets into a namespace, run cogroup queries over ranges,
// kill executors, and watch partition groups rebalance — a hands-on tour of
// the paper's mechanisms.
//
//	$ starksh
//	stark> load 3
//	stark> query 0 2 article-001
//	stark> groups
//	stark> kill 2
//	stark> query 0 2 article-001
//	stark> quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stark"
	"stark/internal/metrics"
)

type shell struct {
	ctx   *stark.Context
	p     stark.Partitioner
	gen   stark.WikipediaTrace
	rdds  []*stark.RDD
	out   *bufio.Writer
	nsReg bool
}

const ns = "logs"

func newShell() *shell {
	return &shell{
		ctx: stark.NewContext(
			stark.WithExtendable(stark.GroupBounds(512<<20, 64<<20, 4)),
			stark.WithMCF(),
			stark.WithExecutors(8),
			stark.WithSlots(4),
			stark.WithSizeScale(420),
		),
		p:   stark.NewHashPartitioner(16),
		gen: stark.DefaultWikipediaTrace(),
		out: bufio.NewWriter(os.Stdout),
	}
}

func (s *shell) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format, args...)
}

func (s *shell) load(hours int) error {
	if !s.nsReg {
		if err := s.ctx.RegisterNamespace(ns, s.p, 4); err != nil {
			return err
		}
		s.nsReg = true
	}
	for i := 0; i < hours; i++ {
		h := len(s.rdds)
		rdd := s.ctx.TextFile(fmt.Sprintf("hour-%02d", h), s.gen.Hour(h), 8).
			LocalityPartitionBy(s.p, ns).Cache()
		if _, err := rdd.Materialize(); err != nil {
			return err
		}
		if _, err := s.ctx.ReportRDD(rdd); err != nil {
			return err
		}
		s.rdds = append(s.rdds, rdd)
		s.printf("loaded hour %d\n", h)
	}
	return nil
}

func (s *shell) query(from, to int, keyword string) error {
	if from < 0 || to >= len(s.rdds) || from > to {
		return fmt.Errorf("range [%d,%d] outside loaded hours [0,%d]", from, to, len(s.rdds)-1)
	}
	q := s.ctx.CoGroup(s.p, s.rdds[from:to+1]...).Filter(func(r stark.Record) bool {
		return strings.Contains(r.Key, keyword)
	})
	n, jm, err := q.Count()
	if err != nil {
		return err
	}
	s.printf("%d urls matching %q in hours [%d,%d]  (%v, locality %.0f%%)\n",
		n, keyword, from, to, jm.Makespan(), jm.LocalityFraction()*100)
	return nil
}

func (s *shell) groups() error {
	gs, err := s.ctx.GroupList(ns)
	if err != nil {
		return err
	}
	sizes, err := s.ctx.GroupSizes(ns)
	if err != nil {
		return err
	}
	for _, g := range gs {
		s.printf("group %3d: partitions [%d,%d)  %5d MB\n", g.ID, g.Lo, g.Hi, sizes[g.ID]>>20)
	}
	return nil
}

func (s *shell) exec(line string) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, nil
	}
	atoi := func(i int, def int) int {
		if i >= len(fields) {
			return def
		}
		v, convErr := strconv.Atoi(fields[i])
		if convErr != nil {
			return def
		}
		return v
	}
	switch fields[0] {
	case "quit", "exit":
		return true, nil
	case "help":
		s.printf("commands: load <hours> | query <from> <to> <keyword> | groups | kill <exec> | restart <exec> | stats | timeline | quit\n")
	case "load":
		return false, s.load(atoi(1, 1))
	case "query":
		kw := ""
		if len(fields) > 3 {
			kw = fields[3]
		}
		return false, s.query(atoi(1, 0), atoi(2, 0), kw)
	case "groups":
		return false, s.groups()
	case "kill":
		s.ctx.KillExecutor(atoi(1, 0))
		s.printf("executor %d failed; lineage recovery will recompute its partitions\n", atoi(1, 0))
	case "restart":
		s.ctx.RestartExecutor(atoi(1, 0))
		s.printf("executor %d back with a cold cache\n", atoi(1, 0))
	case "stats":
		jobs := s.ctx.CompletedJobs()
		s.printf("%d jobs completed; virtual clock at %v\n", len(jobs), s.ctx.Now())
		s.printf("%s\n", s.ctx.Stats())
	case "timeline":
		jobs := s.ctx.CompletedJobs()
		if len(jobs) == 0 {
			s.printf("no jobs yet\n")
			break
		}
		s.printf("%s", metrics.Gantt(jobs[len(jobs)-1], 72))
	default:
		s.printf("unknown command %q (try help)\n", fields[0])
	}
	return false, nil
}

func main() {
	sh := newShell()
	defer func() {
		_ = sh.out.Flush()
	}()
	sh.printf("stark shell — type help\n")
	_ = sh.out.Flush()
	in := bufio.NewScanner(os.Stdin)
	for {
		sh.printf("stark> ")
		_ = sh.out.Flush()
		if !in.Scan() {
			return
		}
		quit, err := sh.exec(in.Text())
		if err != nil {
			sh.printf("error: %v\n", err)
		}
		if quit {
			return
		}
		_ = sh.out.Flush()
	}
}
