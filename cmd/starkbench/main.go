// Command starkbench reproduces the paper's evaluation figures on the
// simulated cluster and prints the measured rows/series next to the paper's
// reported shapes.
//
// Usage:
//
//	starkbench -experiment fig1       # one experiment
//	starkbench -experiment all        # everything (several minutes)
//	starkbench -list                  # enumerate experiments
//	starkbench -experiment fig19 -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stark/internal/experiments"
)

type experiment struct {
	name  string
	about string
	run   func(quick bool) error
}

// tsvOut is set by the -tsv flag; experiments with series data emit
// machine-readable TSV instead of the human-readable table.
var tsvOut bool

// nightly (-nightly) deepens the chaos sweep for the scheduled CI profile;
// dumpFaults (-dump-faults) prints every armed fault schedule (kind,
// virtual time, target) before each chaos seed runs; chaosSeeds (-seeds)
// overrides the selected profile's fault-schedule count (0 keeps it).
var (
	nightly    bool
	dumpFaults bool
	chaosSeeds int
)

// runBenchJSON runs the deterministic-parallel-data-plane benchmark suite
// and writes the machine-readable document (see BENCH_4.json) to path. When
// budgetPath names a budget file, each optimized micro's allocs/op must stay
// under its checked-in ceiling or the run fails (after writing the JSON, so
// a regression still leaves the evidence on disk).
func runBenchJSON(path string, quick bool, cores int, budgetPath string) error {
	r, err := experiments.RunBench(experiments.BenchConfig{Quick: quick, Cores: cores})
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if budgetPath == "" {
		return nil
	}
	raw, err := os.ReadFile(budgetPath)
	if err != nil {
		return fmt.Errorf("reading allocation budget: %w", err)
	}
	var budget experiments.Budget
	if err := json.Unmarshal(raw, &budget); err != nil {
		return fmt.Errorf("parsing allocation budget %s: %w", budgetPath, err)
	}
	if err := r.CheckBudget(budget); err != nil {
		return err
	}
	fmt.Printf("allocation budgets hold (%s)\n", budgetPath)
	return nil
}

func experimentsList() []experiment {
	return []experiment{
		{"fig1", "data locality benefits (C/D/D- bars)", func(bool) error {
			r, err := experiments.RunFig01(experiments.DefaultFig01())
			if err != nil {
				return err
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"fig7", "partition-count trade-off sweep", func(quick bool) error {
			cfg := experiments.DefaultFig07()
			if quick {
				cfg.Partitions = []int{1, 16, 256, 4096, 65536}
			}
			r, err := experiments.RunFig07(cfg)
			if err != nil {
				return err
			}
			if tsvOut {
				return r.WriteTSV(os.Stdout)
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"fig11", "co-locality cogroup delay (Spark-H vs Stark-H)", func(quick bool) error {
			cfg := experiments.DefaultFig11()
			if quick {
				cfg.QueriesPerK = 1
			}
			r, err := experiments.RunFig11(cfg)
			if err != nil {
				return err
			}
			if tsvOut {
				return r.WriteTSV(os.Stdout)
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"fig12", "per-task delay with GC share", func(quick bool) error {
			cfg := experiments.DefaultFig11()
			if quick {
				cfg.QueriesPerK = 1
			}
			r, err := experiments.RunFig11(cfg)
			if err != nil {
				return err
			}
			r.PrintFig12(os.Stdout, []int{2, 4, 6})
			return nil
		}},
		{"fig13", "task input balance under skew (also figs 14, 15)", func(bool) error {
			r, err := experiments.RunSkew(experiments.DefaultSkew())
			if err != nil {
				return err
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"fig17", "cached vs checkpoint size per trending-app RDD", func(bool) error {
			r, err := experiments.RunFig17(experiments.DefaultCheckpoint())
			if err != nil {
				return err
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"fig18", "cumulative checkpoint volume: Stark-1/Stark-3/Tachyon", func(bool) error {
			r, err := experiments.RunFig18(experiments.DefaultCheckpoint())
			if err != nil {
				return err
			}
			if tsvOut {
				return r.WriteTSV(os.Stdout)
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"fig19", "delay vs offered load and throughput at 800ms", func(quick bool) error {
			cfg := experiments.DefaultThroughput()
			if quick {
				cfg.QueriesPerRate = 60
				cfg.Rates = []float64{9, 56, 220}
			}
			r, err := experiments.RunFig19(cfg)
			if err != nil {
				return err
			}
			if tsvOut {
				return r.WriteTSV(os.Stdout)
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"fig20", "delay over a 24h trace replay at 20 jobs/s", func(quick bool) error {
			cfg := experiments.DefaultFig20()
			if quick {
				cfg.Hours = 6
				cfg.BurstsPerHour = 1
			}
			r, err := experiments.RunFig20(cfg)
			if err != nil {
				return err
			}
			if tsvOut {
				return r.WriteTSV(os.Stdout)
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"recovery", "post-failure job delay vs checkpoint bound (companion to Sec. III-D)", func(bool) error {
			r, err := experiments.RunRecovery(experiments.DefaultCheckpoint(),
				[]time.Duration{time.Second, 3200 * time.Millisecond, 10 * time.Second})
			if err != nil {
				return err
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"chaos", "randomized fault schedules vs fault-free oracle (recovery contract)", func(quick bool) error {
			cfg := experiments.DefaultChaos()
			if nightly {
				cfg = experiments.NightlyChaos()
			}
			if quick {
				cfg.Seeds = 20
				cfg.Steps = 4
			}
			if chaosSeeds > 0 {
				cfg.Seeds = chaosSeeds
			}
			if dumpFaults {
				cfg.DumpFaults = os.Stdout
			}
			r, err := experiments.RunChaos(cfg)
			r.Print(os.Stdout)
			return err
		}},
		{"multitenant", "multi-tenant overload oracle: admission control, DRR fairness, deadlines (robustness suite)", func(quick bool) error {
			cfg := experiments.DefaultMultitenant()
			if quick {
				cfg.Seeds = 8
			}
			if chaosSeeds > 0 {
				cfg.Seeds = chaosSeeds
			}
			if dumpFaults {
				cfg.DumpFaults = os.Stdout
			}
			r, err := experiments.RunMultitenant(cfg)
			r.Print(os.Stdout)
			return err
		}},
		{"cachepolicy", "LRU vs DAG-aware eviction A/B: recomputes-after-eviction under cache exhaustion (robustness suite)", func(quick bool) error {
			cfg := experiments.DefaultCachePolicy()
			if quick {
				cfg.Seeds = 2
				cfg.Rounds = 6
			}
			if chaosSeeds > 0 {
				cfg.Seeds = chaosSeeds
			}
			r, err := experiments.RunCachePolicy(cfg)
			r.Print(os.Stdout)
			return err
		}},
		{"churn", "dynamic load/evict collection under correlated queries (Sec. I scenario)", func(bool) error {
			r, err := experiments.RunChurn(experiments.DefaultChurn())
			if err != nil {
				return err
			}
			r.Print(os.Stdout)
			return nil
		}},
		{"ablations", "design-choice sweeps beyond the paper (MCF, hysteresis, wait bound, relax factor)", func(bool) error {
			mcf, err := experiments.RunAblationMCF()
			if err != nil {
				return err
			}
			mcf.Print(os.Stdout)
			hyst, err := experiments.RunAblationHysteresis([]float64{1.5, 2, 4, 8, 16})
			if err != nil {
				return err
			}
			experiments.PrintHysteresis(os.Stdout, hyst)
			waits, err := experiments.RunAblationLocalityWait([]time.Duration{
				0, 50 * time.Millisecond, 250 * time.Millisecond, time.Second, 3 * time.Second,
			})
			if err != nil {
				return err
			}
			experiments.PrintWait(os.Stdout, waits)
			relax, err := experiments.RunAblationRelax([]float64{1, 2, 3, 4, 8})
			if err != nil {
				return err
			}
			experiments.PrintRelax(os.Stdout, relax)
			place, err := experiments.RunAblationPlacement()
			if err != nil {
				return err
			}
			experiments.PrintPlacement(os.Stdout, place)
			return nil
		}},
	}
}

func main() {
	var (
		name      = flag.String("experiment", "", "experiment to run (fig1, fig7, ... or 'all')")
		quick     = flag.Bool("quick", false, "smaller sweeps for a fast pass")
		list      = flag.Bool("list", false, "list available experiments")
		tsv       = flag.Bool("tsv", false, "emit machine-readable TSV where the figure has series data")
		night     = flag.Bool("nightly", false, "deepen the chaos sweep (scheduled CI profile)")
		dumpF     = flag.Bool("dump-faults", false, "print each chaos seed's armed fault schedule before it runs")
		seeds     = flag.Int("seeds", 0, "override the chaos profile's fault-schedule count (0 keeps the profile default)")
		benchJSON = flag.String("bench-json", "",
			"measure the parallel data plane (wall-clock 1-vs-N arms, hot-path micros) and write JSON to this path")
		benchCores  = flag.Int("bench-cores", 4, "worker-pool size of the parallel bench arm")
		benchBudget = flag.String("bench-budget", "",
			"allocation-budget JSON (micro name -> max allocs/op); with -bench-json, fail if an optimized micro exceeds its ceiling")
	)
	flag.Parse()
	tsvOut = *tsv
	nightly = *night
	dumpFaults = *dumpF
	chaosSeeds = *seeds
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *quick, *benchCores, *benchBudget); err != nil {
			fmt.Fprintf(os.Stderr, "bench failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	exps := experimentsList()
	if *list || *name == "" {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-6s %s\n", e.name, e.about)
		}
		if *name == "" && !*list {
			fmt.Println("\nrun with -experiment <name> or -experiment all")
		}
		return
	}
	var failed bool
	for _, e := range exps {
		if *name != "all" && !strings.EqualFold(*name, e.name) {
			continue
		}
		start := time.Now() //starklint:ignore wallclock experiment harness reports real elapsed time, not simulated time
		fmt.Printf("== %s: %s ==\n", e.name, e.about)
		if err := e.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			failed = true
		}
		//starklint:ignore wallclock experiment harness reports real elapsed time, not simulated time
		fmt.Printf("-- %s done in %v (wall)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		if *name != "all" {
			if failed {
				os.Exit(1)
			}
			return
		}
	}
	if failed {
		os.Exit(1)
	}
	if *name != "all" {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *name)
		os.Exit(2)
	}
}
