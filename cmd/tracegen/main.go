// Command tracegen emits the synthetic traces the experiments run on, in
// the repository's TSV trace format (`tag \t index \t key \t value`), so
// they can be inspected or fed to other tools. The format round-trips
// through workload.ReadTSV.
//
// Usage:
//
//	tracegen -trace wikipedia -hours 3 > wiki.tsv
//	tracegen -trace taxi -steps 12 > taxi.tsv
//	tracegen -trace merged -steps 2 | head
package main

import (
	"flag"
	"fmt"
	"os"

	"stark"
	"stark/internal/record"
	"stark/internal/workload"
)

func run() error {
	var (
		trace = flag.String("trace", "wikipedia", "wikipedia | taxi | merged")
		hours = flag.Int("hours", 1, "hours to emit (wikipedia)")
		steps = flag.Int("steps", 1, "timesteps to emit (taxi, merged)")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	emit := func(tag string, i int, recs []record.Record) error {
		return workload.WriteTSV(os.Stdout, tag, i, recs)
	}

	switch *trace {
	case "wikipedia":
		g := stark.DefaultWikipediaTrace()
		g.Seed = *seed
		for h := 0; h < *hours; h++ {
			if err := emit("wiki", h, g.Hour(h)); err != nil {
				return err
			}
		}
	case "taxi":
		g := stark.DefaultTaxiTrace()
		g.Seed = *seed
		for s := 0; s < *steps; s++ {
			if err := emit("taxi", s, g.Step(s)); err != nil {
				return err
			}
		}
	case "merged":
		taxi := stark.DefaultTaxiTrace()
		taxi.Seed = *seed
		tw := stark.DefaultTwitterTrace()
		for s := 0; s < *steps; s++ {
			if err := emit("merged", s, stark.MergedTaxiTweets(taxi, tw, s)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown trace %q", *trace)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
