package stark_test

// One benchmark per measured figure of the paper's evaluation (Sec. IV).
// Each iteration replays the figure's full experiment on the simulated
// cluster and reports the headline quantities as custom metrics (virtual
// time, ratios), so `go test -bench=.` regenerates every result. The
// companion CLI `go run ./cmd/starkbench -experiment all` prints the full
// rows/series.

import (
	"testing"
	"time"

	"stark/internal/experiments"
)

func reportSeconds(b *testing.B, name string, d time.Duration) {
	b.Helper()
	b.ReportMetric(d.Seconds(), name)
}

func BenchmarkFig01DataLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig01(experiments.DefaultFig01())
		if err != nil {
			b.Fatal(err)
		}
		reportSeconds(b, "C_vsec", r.C)
		reportSeconds(b, "D_vsec", r.D)
		reportSeconds(b, "Dminus_vsec", r.DMinus)
	}
}

func BenchmarkFig07PartitionSweep(b *testing.B) {
	cfg := experiments.DefaultFig07()
	cfg.Partitions = []int{1, 16, 256, 4096, 65536}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig07(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bestN, bestD := r.Best()
		b.ReportMetric(float64(bestN), "best_partitions")
		reportSeconds(b, "best_vsec", bestD)
		reportSeconds(b, "at1_vsec", r.Delay[0])
		reportSeconds(b, "at65536_vsec", r.Delay[len(r.Delay)-2])
	}
}

func BenchmarkFig11CoLocality(b *testing.B) {
	cfg := experiments.DefaultFig11()
	cfg.QueriesPerK = 2
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		k5 := len(r.Ks) - 2
		b.ReportMetric(float64(r.SparkH[k5])/float64(r.StarkH[k5]), "speedup_k5")
		k6 := len(r.Ks) - 1
		b.ReportMetric(float64(r.SparkH[k6])/float64(r.StarkH[k6]), "speedup_k6")
		reportSeconds(b, "starkH_k5_vsec", r.StarkH[k5])
		reportSeconds(b, "sparkH_k5_vsec", r.SparkH[k5])
	}
}

func BenchmarkFig12TaskDelay(b *testing.B) {
	cfg := experiments.DefaultFig11()
	cfg.QueriesPerK = 3
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// GC share of the slowest Stark cogroup-6 task — the Fig. 12 story.
		jm := r.TasksStark[6]
		tasks := jm.TasksSortedByDuration()
		if len(tasks) == 0 {
			b.Fatal("no tasks recorded")
		}
		slow := tasks[0]
		b.ReportMetric(float64(slow.GC)/float64(slow.Duration())*100, "stark_k6_gc_pct")
	}
}

func BenchmarkFig13InputBalance(b *testing.B) {
	cfg := experiments.DefaultSkew()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSkew(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Max/mean task-input ratio on the hottest collection: Stark-S is
		// skewed, Stark-E balanced.
		ratio := func(sys experiments.System) float64 {
			sizes := r.InputSizes[sys]["RDD 7-9"]
			var max, sum int64
			for _, s := range sizes {
				sum += s
				if s > max {
					max = s
				}
			}
			if sum == 0 {
				return 0
			}
			return float64(max) / (float64(sum) / float64(len(sizes)))
		}
		b.ReportMetric(ratio(experiments.StarkS), "starkS_imbalance")
		b.ReportMetric(ratio(experiments.StarkE), "starkE_imbalance")
	}
}

func BenchmarkFig14SkewJobs(b *testing.B) {
	cfg := experiments.DefaultSkew()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSkew(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSeconds(b, "starkE_first_vsec", r.Jobs[experiments.StarkE]["RDD 7-9"].First)
		reportSeconds(b, "starkE_second_vsec", r.Jobs[experiments.StarkE]["RDD 7-9"].Second)
		reportSeconds(b, "starkS_second_vsec", r.Jobs[experiments.StarkS]["RDD 7-9"].Second)
		reportSeconds(b, "sparkR_second_vsec", r.Jobs[experiments.SparkR]["RDD 7-9"].Second)
	}
}

func BenchmarkFig15SkewTasks(b *testing.B) {
	cfg := experiments.DefaultSkew()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSkew(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Shuffle share of total task time for Spark-R on the skewed
		// collection — the Fig. 15 white bars.
		jm := r.Jobs[experiments.SparkR]["RDD 7-9"].SecondStats
		var total, shuffle time.Duration
		for _, tm := range jm.Tasks {
			total += tm.Duration()
			shuffle += tm.ShuffleRead
		}
		if total > 0 {
			b.ReportMetric(float64(shuffle)/float64(total)*100, "sparkR_shuffle_pct")
		}
	}
}

func BenchmarkFig17CheckpointSize(b *testing.B) {
	cfg := experiments.DefaultCheckpoint()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig17(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio, "cp_ratio")
	}
}

func BenchmarkFig18CheckpointTotal(b *testing.B) {
	cfg := experiments.DefaultCheckpoint()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig18(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := cfg.Steps - 1
		b.ReportMetric(float64(r.Stark1[last])/(1<<20), "stark1_MB")
		b.ReportMetric(float64(r.Stark3[last])/(1<<20), "stark3_MB")
		b.ReportMetric(float64(r.Tachyon[last])/(1<<20), "tachyon_MB")
		b.ReportMetric(float64(r.Tachyon[last])/float64(r.Stark1[last]), "tachyon_over_stark1")
	}
}

func BenchmarkFig19Throughput(b *testing.B) {
	cfg := experiments.DefaultThroughput()
	cfg.QueriesPerRate = 60
	cfg.Rates = []float64{9, 56, 220}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig19(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Throughput[experiments.StarkH], "starkH_jobs_per_s")
		b.ReportMetric(r.Throughput[experiments.SparkH], "sparkH_jobs_per_s")
		b.ReportMetric(float64(r.Curves[experiments.StarkH][0].MeanDelay.Milliseconds()), "starkH_ms_at_9")
		b.ReportMetric(float64(r.Curves[experiments.SparkH][0].MeanDelay.Milliseconds()), "sparkH_ms_at_9")
	}
}

func BenchmarkFig20DelayOverTime(b *testing.B) {
	cfg := experiments.DefaultFig20()
	cfg.Hours = 8
	cfg.BurstsPerHour = 1
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig20(cfg)
		if err != nil {
			b.Fatal(err)
		}
		peak := func(sys experiments.System) float64 {
			var max time.Duration
			for _, pt := range r.Series[sys] {
				if pt.MeanDelay > max {
					max = pt.MeanDelay
				}
			}
			return float64(max.Milliseconds())
		}
		b.ReportMetric(peak(experiments.SparkH), "sparkH_peak_ms")
		b.ReportMetric(peak(experiments.StarkH), "starkH_peak_ms")
		b.ReportMetric(peak(experiments.StarkE), "starkE_peak_ms")
	}
}
