package stark

import (
	"time"

	"stark/internal/config"
	"stark/internal/engine"
	"stark/internal/group"
	"stark/internal/metrics"
	"stark/internal/partition"
	"stark/internal/rdd"
	"stark/internal/record"
	"stark/internal/zorder"
)

// Record is the key-value element type of every dataset.
type Record = record.Record

// Pair builds a Record.
func Pair(key string, value any) Record { return record.Pair(key, value) }

// CoGrouped is the value type CoGroup produces: one value slice per parent.
type CoGrouped = record.CoGrouped

// Joined is the value type Join produces.
type Joined = record.Joined

// Partitioner maps keys to partitions; see NewHashPartitioner,
// NewRangePartitioner and NewStaticRangePartitioner.
type Partitioner = partition.Partitioner

// NewHashPartitioner returns Spark's default hash partitioner over n
// partitions.
func NewHashPartitioner(n int) Partitioner { return partition.NewHash(n) }

// NewRangePartitioner fits fresh range boundaries to a key sample. Every
// call yields a distinct partitioner identity (Spark-R semantics): RDDs
// partitioned by different calls are NOT co-partitioned.
func NewRangePartitioner(sample []string, n int) Partitioner {
	return partition.NewRange(sample, n)
}

// NewStaticRangePartitioner builds a range partitioner from fixed
// boundaries; equal boundaries give co-partitioning (Stark-S semantics).
func NewStaticRangePartitioner(bounds []string) Partitioner {
	return partition.NewStaticRange(bounds)
}

// UniformKeyBounds returns n-1 boundaries uniform over printable string
// keys, for NewStaticRangePartitioner.
func UniformKeyBounds(n int) []string { return partition.UniformBounds(n) }

// HexKeyBounds returns n-1 boundaries uniform over fixed-width hex keys
// such as Z-order keys.
func HexKeyBounds(n, width int) []string { return partition.HexBounds(n, width) }

// ZGrid maps points in the unit square onto Z-order string keys whose
// lexicographic order follows the space-filling curve; use it to build
// spatial keys that range partitioners handle well.
type ZGrid struct {
	g zorder.Grid
}

// NewZGrid returns a grid with n cells per side (a power of two <= 65536).
func NewZGrid(n uint32) ZGrid { return ZGrid{g: zorder.NewGrid(n)} }

// Key returns the Z-order key of the cell containing (x, y), clamped to
// [0, 1).
func (z ZGrid) Key(x, y float64) string { return zorder.Key(z.g.EncodePoint(x, y)) }

// Side reports cells per side.
func (z ZGrid) Side() uint32 { return z.g.Side() }

// JobStats carries a job's virtual-time measurements: makespan, per-task
// breakdowns (compute, GC, shuffle read), and locality counts.
type JobStats = metrics.JobMetrics

// TaskStats is one task's breakdown within JobStats.
type TaskStats = metrics.TaskMetrics

// GroupChange describes one split or merge performed by the GroupManager.
type GroupChange = group.Change

// GroupInfo describes one partition group (a Group Tree leaf).
type GroupInfo = group.Group

// Option configures a Context.
type Option func(*engine.Config)

// WithExecutors sets the cluster size.
func WithExecutors(n int) Option {
	return func(c *engine.Config) { c.Cluster.NumExecutors = n }
}

// WithSlots sets task slots per executor.
func WithSlots(n int) Option {
	return func(c *engine.Config) { c.Cluster.SlotsPerExecutor = n }
}

// WithMemory sets per-executor cache capacity in simulated bytes.
func WithMemory(bytes int64) Option {
	return func(c *engine.Config) { c.Cluster.MemoryPerExecutor = bytes }
}

// WithSizeScale makes every real in-process byte count as scale simulated
// bytes, so small record sets stand in for the paper's multi-hundred-MB
// datasets.
func WithSizeScale(scale float64) Option {
	return func(c *engine.Config) { c.Cluster.SizeScale = scale }
}

// WithCoLocality enables the LocalityManager (Stark-H / Stark-S).
func WithCoLocality() Option {
	return func(c *engine.Config) { c.Features.CoLocality = true }
}

// WithExtendable enables extendable partition groups on top of co-locality
// (Stark-E). Bounds configure the split/merge thresholds.
func WithExtendable(bounds group.Config) Option {
	return func(c *engine.Config) {
		c.Features.CoLocality = true
		c.Features.Extendable = true
		c.Groups = bounds
	}
}

// GroupBounds builds the extendable-group threshold configuration: groups
// split above maxBytes, sibling pairs merge below minBytes, sizes aggregate
// over the window most recent reported RDDs.
func GroupBounds(maxBytes, minBytes int64, window int) group.Config {
	return group.Config{MaxBytes: maxBytes, MinBytes: minBytes, Window: window}
}

// WithMCF enables Minimum-Contention-First remote scheduling.
func WithMCF() Option {
	return func(c *engine.Config) { c.Features.MCF = true }
}

// WithStark enables the full Stark feature set with default group bounds.
func WithStark() Option {
	return func(c *engine.Config) {
		c.Features.CoLocality = true
		c.Features.Extendable = true
		c.Features.MCF = true
	}
}

// WithLocalityWait sets the delay-scheduling wait bound.
func WithLocalityWait(d time.Duration) Option {
	return func(c *engine.Config) { c.Sched.LocalityWait = d }
}

// WithCheckpointing enables Stark's min-cut checkpointing with recovery
// bound r and relaxation factor f (>= 1).
func WithCheckpointing(r time.Duration, f float64) Option {
	return func(c *engine.Config) {
		c.Checkpoint.Mode = engine.CheckpointOptimal
		c.Checkpoint.Bound = r
		c.Checkpoint.Relax = f
	}
}

// WithEdgeCheckpointing enables the Tachyon Edge baseline with recovery
// bound r.
func WithEdgeCheckpointing(r time.Duration) Option {
	return func(c *engine.Config) {
		c.Checkpoint.Mode = engine.CheckpointEdge
		c.Checkpoint.Bound = r
	}
}

// WithSeed fixes the scheduler's randomization seed; equal seeds give
// bit-identical runs.
func WithSeed(seed int64) Option {
	return func(c *engine.Config) { c.Seed = seed }
}

// WithParallelism bounds the wall-clock data-plane worker pool executing
// task compute between virtual-time events. It never changes simulation
// results — runs are bit-identical at any setting — only how fast they are
// produced. 1 forces sequential execution; 0 (the default) uses
// runtime.GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(c *engine.Config) { c.Execution.Parallelism = n }
}

// WithGC tunes the garbage-collection pressure model: base overhead
// fraction below the knee, growing with the given power to max at full
// memory.
func WithGC(base, knee, max, power float64) Option {
	return func(c *engine.Config) {
		c.Cluster.GC = config.GC{Base: base, Knee: knee, Max: max, Power: power}
	}
}

// WithClusterConfig replaces the whole cost model for full control.
func WithClusterConfig(cc config.Cluster) Option {
	return func(c *engine.Config) { c.Cluster = cc }
}

// DefaultClusterConfig exposes the calibrated cost model for tweaking with
// WithClusterConfig.
func DefaultClusterConfig() config.Cluster { return config.Default() }

// Context is the driver: it owns the lineage graph, the simulated cluster,
// and the virtual clock.
type Context struct {
	eng *engine.Engine
}

// NewContext builds a driver over a fresh simulated cluster.
func NewContext(opts ...Option) *Context {
	cfg := engine.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &Context{eng: engine.New(cfg)}
}

// Engine exposes the underlying engine for advanced use (experiments,
// failure injection beyond KillExecutor).
func (c *Context) Engine() *engine.Engine { return c.eng }

// Now reports the current virtual time.
func (c *Context) Now() time.Duration { return c.eng.Now() }

// NumExecutors reports the cluster size.
func (c *Context) NumExecutors() int { return c.eng.Cluster().NumExecutors() }

// RegisterNamespace declares a locality namespace: RDDs created with
// LocalityPartitionBy(p, ns) share the partitioner and their collection
// partitions are co-located. initialGroups sizes the Group Tree in
// extendable mode (power of two; so must be the partition count).
func (c *Context) RegisterNamespace(ns string, p Partitioner, initialGroups int) error {
	return c.eng.RegisterNamespace(ns, p, initialGroups)
}

// Parallelize creates an in-memory source RDD split into numParts
// contiguous chunks.
func (c *Context) Parallelize(name string, recs []Record, numParts int) *RDD {
	parts := chunk(recs, numParts)
	return &RDD{ctx: c, r: c.eng.Graph().Source(name, parts, false)}
}

// TextFile creates a source RDD whose materialization charges a disk read,
// like sc.textFile.
func (c *Context) TextFile(name string, recs []Record, numParts int) *RDD {
	parts := chunk(recs, numParts)
	return &RDD{ctx: c, r: c.eng.Graph().Source(name, parts, true)}
}

// FromPartitions creates a source RDD with explicit partitioning.
func (c *Context) FromPartitions(name string, parts [][]Record, fromDisk bool) *RDD {
	return &RDD{ctx: c, r: c.eng.Graph().Source(name, parts, fromDisk)}
}

// PartitionedSource creates a source RDD declared as partitioned by p under
// namespace ns (pass "" for none) — e.g. the empty previous-step state of
// an iterative application, so first-step cogroups stay narrow. The caller
// guarantees every record sits in its p-assigned partition.
func (c *Context) PartitionedSource(name string, parts [][]Record, p Partitioner, ns string) *RDD {
	r := c.eng.Graph().SourceWithPartitioner(name, parts, false, p, ns)
	c.eng.TrackNamespaceRDD(r)
	return &RDD{ctx: c, r: r}
}

// EmptyPartitioned creates an empty RDD partitioned by p (ns optional).
func (c *Context) EmptyPartitioned(name string, p Partitioner, ns string) *RDD {
	return c.PartitionedSource(name, make([][]Record, p.NumPartitions()), p, ns)
}

// GroupSizes reports the namespace's current per-group aggregated byte
// sizes (extendable mode).
func (c *Context) GroupSizes(ns string) (map[int]int64, error) {
	return c.eng.Groups().Sizes(ns)
}

// GroupList reports the namespace's current groups in partition order.
func (c *Context) GroupList(ns string) ([]GroupInfo, error) {
	return c.eng.Groups().Groups(ns)
}

// CoGroup groups the parents' values by key into CoGrouped values,
// partitioned by p. Parents already partitioned equivalently join through
// narrow dependencies (no shuffle).
func (c *Context) CoGroup(p Partitioner, rdds ...*RDD) *RDD {
	parents := make([]*internalRDD, len(rdds))
	for i, r := range rdds {
		parents[i] = r.r
	}
	return &RDD{ctx: c, r: c.eng.Graph().CoGroup("cogroup", p, parents...)}
}

// Join inner-joins two RDDs into Joined values, partitioned by p.
func (c *Context) Join(p Partitioner, left, right *RDD) *RDD {
	return &RDD{ctx: c, r: c.eng.Graph().Join("join", p, left.r, right.r)}
}

// ReportRDD feeds a materialized RDD's partition sizes to the GroupManager
// and applies any split/merge rebalancing (extendable mode). It returns
// the changes performed.
func (c *Context) ReportRDD(r *RDD) ([]GroupChange, error) {
	return c.eng.ReportRDD(r.r)
}

// KillExecutor fails an executor: its cache vanishes and running tasks are
// resubmitted elsewhere; lost partitions recover through lineage.
func (c *Context) KillExecutor(id int) { c.eng.KillExecutor(id) }

// RestartExecutor revives a failed executor with a cold cache.
func (c *Context) RestartExecutor(id int) { c.eng.RestartExecutor(id) }

// CompletedJobs returns stats of every finished job in completion order.
func (c *Context) CompletedJobs() []JobStats { return c.eng.CompletedJobs() }

// TotalCheckpointBytes reports cumulative checkpointed bytes.
func (c *Context) TotalCheckpointBytes() int64 {
	return c.eng.Store().TotalCheckpointBytes()
}

func chunk(recs []Record, numParts int) [][]Record {
	if numParts < 1 {
		numParts = 1
	}
	parts := make([][]Record, numParts)
	if len(recs) == 0 {
		return parts
	}
	for i, r := range recs {
		p := i * numParts / len(recs)
		if p >= numParts {
			p = numParts - 1
		}
		parts[p] = append(parts[p], r)
	}
	return parts
}

// LineageDOT renders the full lineage graph in Graphviz DOT form for
// inspection (`dot -Tsvg`).
func (c *Context) LineageDOT() string {
	return rdd.Dot(c.eng.Graph().RDDs())
}
