package stark

import (
	"stark/internal/engine"
)

// TraceEvent is one scheduler event on the virtual timeline; install a sink
// with Context.SetTracer to observe job/stage/task lifecycles, failures,
// checkpoints, and replication decisions.
type TraceEvent = engine.TraceEvent

// SetTracer installs a trace sink (nil disables). The sink runs
// synchronously inside the event loop; keep it cheap.
func (c *Context) SetTracer(sink func(TraceEvent)) { c.eng.SetTracer(sink) }

// ExecutorStats is a point-in-time view of one simulated executor.
type ExecutorStats struct {
	ID          int
	Dead        bool
	Slots       int
	BusySlots   int
	CacheUsed   int64
	CacheLimit  int64
	CacheBlocks int
}

// ClusterStats reports every executor's slots and cache occupancy — the
// state co-locality and replication manipulate.
func (c *Context) ClusterStats() []ExecutorStats {
	cl := c.eng.Cluster()
	out := make([]ExecutorStats, 0, cl.NumExecutors())
	for _, e := range cl.Executors() {
		out = append(out, ExecutorStats{
			ID:          e.ID,
			Dead:        e.Dead(),
			Slots:       e.Slots,
			BusySlots:   e.Busy(),
			CacheUsed:   e.Store.Used(),
			CacheLimit:  e.Store.Capacity(),
			CacheBlocks: e.Store.Len(),
		})
	}
	return out
}

// CheckClusterConsistency verifies block-directory and slot invariants;
// tests and long-running drivers can call it after failure churn.
func (c *Context) CheckClusterConsistency() error {
	return c.eng.Cluster().CheckConsistency()
}

// EngineStats aggregates engine-lifetime counters: cache hit rate, locality
// rate, bytes shuffled, compute and GC time.
type EngineStats = engine.Stats

// Stats snapshots the engine-lifetime counters.
func (c *Context) Stats() EngineStats { return c.eng.Stats() }
