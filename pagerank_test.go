package stark_test

// Integration test: PageRank through the public API must match a
// straightforward sequential power iteration on the same graph.

import (
	"fmt"
	"math"
	"testing"

	"stark"
)

const prDamping = 0.85

type testGraph struct {
	nodes int
	outs  map[string][]string
}

func smallGraph() testGraph {
	// A 6-node graph with a clear sink-free structure.
	outs := map[string][]string{
		"a": {"b", "c"},
		"b": {"c"},
		"c": {"a"},
		"d": {"c", "a"},
		"e": {"a", "b", "d"},
		"f": {"e", "a"},
	}
	return testGraph{nodes: len(outs), outs: outs}
}

// referenceRanks runs sequential power iteration with the exact semantics
// of the join/flatMap/reduceByKey pipeline (as in Spark's classic
// PageRank): only nodes present in the current ranks contribute, and only
// nodes that received contributions appear in the next ranks.
func referenceRanks(g testGraph, iterations int) map[string]float64 {
	ranks := map[string]float64{}
	for n := range g.outs {
		ranks[n] = 1.0
	}
	for it := 0; it < iterations; it++ {
		contribs := map[string]float64{}
		for n, rank := range ranks {
			outs := g.outs[n]
			if len(outs) == 0 {
				continue
			}
			share := rank / float64(len(outs))
			for _, o := range outs {
				contribs[o] += share
			}
		}
		next := map[string]float64{}
		for n, c := range contribs {
			next[n] = (1 - prDamping) + prDamping*c
		}
		ranks = next
	}
	return ranks
}

func engineRanks(t *testing.T, g testGraph, iterations int) map[string]float64 {
	t.Helper()
	ctx := stark.NewContext(stark.WithCoLocality(), stark.WithExecutors(4), stark.WithSeed(7))
	p := stark.NewHashPartitioner(4)
	if err := ctx.RegisterNamespace("pr", p, 1); err != nil {
		t.Fatal(err)
	}
	var linkRecs, rankRecs []stark.Record
	for n, outs := range g.outs {
		vals := make([]any, len(outs))
		for i, o := range outs {
			vals[i] = o
		}
		linkRecs = append(linkRecs, stark.Pair(n, vals))
		rankRecs = append(rankRecs, stark.Pair(n, 1.0))
	}
	links := ctx.Parallelize("links", linkRecs, 2).LocalityPartitionBy(p, "pr").Cache()
	if _, err := links.Materialize(); err != nil {
		t.Fatal(err)
	}
	ranks := ctx.Parallelize("ranks", rankRecs, 2).PartitionBy(p).Cache()
	for it := 0; it < iterations; it++ {
		contribs := ctx.Join(p, links, ranks).FlatMap(func(r stark.Record) []stark.Record {
			j := r.Value.(stark.Joined)
			outs := j.Left.([]any)
			share := j.Right.(float64) / float64(len(outs))
			recs := make([]stark.Record, len(outs))
			for i, o := range outs {
				recs[i] = stark.Pair(o.(string), share)
			}
			return recs
		})
		ranks = contribs.ReduceByKey(p, func(a, b any) any {
			return a.(float64) + b.(float64)
		}).MapValues(func(r stark.Record) stark.Record {
			return stark.Pair(r.Key, (1-prDamping)+prDamping*r.Value.(float64))
		}).Cache()
		if it == 2 {
			if _, err := ranks.Materialize(); err != nil {
				t.Fatal(err)
			}
			ranks.Checkpoint() // exercise the checkpoint path mid-iteration
			ctx.KillExecutor(1)
		}
	}
	recs, _, err := ranks.Collect()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, r := range recs {
		out[r.Key] = r.Value.(float64)
	}
	return out
}

func TestPageRankMatchesReference(t *testing.T) {
	g := smallGraph()
	const iterations = 6
	want := referenceRanks(g, iterations)
	got := engineRanks(t, g, iterations)
	if len(got) != len(want) {
		t.Fatalf("engine ranks %d nodes, reference %d", len(got), len(want))
	}
	for n, w := range want {
		gv, ok := got[n]
		if !ok {
			t.Errorf("node %s missing from engine ranks (want %f)", n, w)
			continue
		}
		if math.Abs(gv-w) > 1e-9 {
			t.Errorf("node %s: engine %f, reference %f", n, gv, w)
		}
	}
	_ = fmt.Sprintf
}
