# Stark reproduction — common entry points.

GO ?= go

.PHONY: all build vet lint lint-json test test-short test-race chaos chaos-nightly multitenant cachepolicy bench bench-json bench-engine examples experiments clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus starklint, the repo's determinism/purity/
# plane-isolation analyzers (see DESIGN.md section 11) and the module-wide
# call-graph suite (planetaint, hotalloc, errwrap; section 16). Gate for
# every bench target so BENCH_* numbers never come off a dirty tree.
lint: vet
	$(GO) run ./cmd/starklint ./...

# Same analyzers, machine-readable: one JSON object per finding, written to
# starklint-findings.json for CI artifacts and editor tooling. Exit status
# matches `make lint`, so the file holds the findings whenever this fails.
lint-json: vet
	$(GO) run ./cmd/starklint -json ./... > starklint-findings.json

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# SEEDS overrides the chaos profile's fault-schedule count; 0 keeps the
# profile default (30 for chaos, 120 for chaos-nightly).
SEEDS ?= 0

chaos:
	$(GO) run ./cmd/starkbench -experiment chaos -seeds $(SEEDS)

chaos-nightly:
	$(GO) run ./cmd/starkbench -experiment chaos -nightly -dump-faults -seeds $(SEEDS)

# Multi-tenant overload oracle: session-layer tests under the race detector
# at 1 and 4 procs, then the 30-seed storm/poison sweep (SEEDS overrides).
multitenant:
	$(GO) test -race -cpu 1,4 ./internal/session/
	$(GO) run ./cmd/starkbench -experiment multitenant -seeds $(SEEDS)

# Eviction-policy A/B: engine and cluster tests under the race detector at
# 1 and 4 procs, then the LRU-vs-DAG recompute comparison (SEEDS overrides
# the per-arm seed count).
cachepolicy:
	$(GO) test -race -cpu 1,4 ./internal/cluster/ ./internal/engine/
	$(GO) run ./cmd/starkbench -experiment cachepolicy -seeds $(SEEDS)

bench: lint
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Engine/record hot-path benchmarks (GroupByKeySorted, bucketing, the
# parallel data plane's 1-vs-4 worker pair).
bench-engine: lint
	$(GO) test -bench=. -benchmem -benchtime=3x ./internal/engine/ ./internal/record/

# Machine-readable parallel-data-plane measurements (wall-clock speedup,
# virtual-time identity, allocation micros) -> BENCH_4.json, gated by the
# checked-in allocs/op ceilings in bench_budget.json.
bench-json: lint
	$(GO) run ./cmd/starkbench -bench-json BENCH_4.json -bench-budget bench_budget.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/logmining -hours 4 -cogroup 3
	$(GO) run ./examples/taxiads -hours 3
	$(GO) run ./examples/trending -steps 6
	$(GO) run ./examples/pagerank -nodes 500 -iterations 4
	$(GO) run ./examples/forensics

experiments:
	$(GO) run ./cmd/starkbench -experiment all -quick

clean:
	$(GO) clean ./...
