// Package stark is a Go reproduction of "Stark: Optimizing In-Memory
// Computing For Dynamic Dataset Collections" (Li et al., IEEE ICDCS 2017).
//
// Stark extends a Spark-like in-memory computing engine with three
// mechanisms for applications that operate on dynamic collections of
// datasets (hourly logs, streaming timesteps, interactively loaded
// forensics data):
//
//   - Co-locality (LocalityManager): all RDDs registered under a namespace
//     share one partitioner, and partition i of every RDD is cached on the
//     same executors, so cogroup/join across the collection is local and
//     shuffle-free.
//   - Partition elasticity (GroupManager): data is split into many small
//     partitions organized into extendable partition groups — leaves of a
//     binary Group Tree that split and merge on size thresholds without
//     repartitioning; a group is the task scheduling unit, and the
//     Minimum-Contention-First scheduler places remote tasks on the least
//     contended executors.
//   - Bounded-delay checkpointing (CheckpointOptimizer): when any
//     uncheckpointed lineage path exceeds a recovery bound, a min-cut over
//     the lineage selects the cheapest RDD set to persist.
//
// Because no Spark exists in Go, the package includes the full substrate: a
// lazy RDD engine with narrow/wide dependencies, stages, a shuffle layer
// with persisted map outputs, per-executor LRU caches, delay scheduling,
// and failure recovery — all executing real transformations over in-process
// data while a deterministic discrete-event simulation charges cluster
// costs (disk, network, compute, GC) on a virtual timeline. Experiments
// that simulate hours of cluster time run in milliseconds.
//
// # Quick start
//
//	ctx := stark.NewContext(stark.WithStark())
//	p := stark.NewHashPartitioner(8)
//	if err := ctx.RegisterNamespace("logs", p, 1); err != nil { ... }
//
//	var hours []*stark.RDD
//	for h := 0; h < 3; h++ {
//		rdd := ctx.Parallelize(fmt.Sprintf("hour%d", h), records[h], 4).
//			LocalityPartitionBy(p, "logs").
//			Cache()
//		rdd.MustCount()
//		hours = append(hours, rdd)
//	}
//	errors := ctx.CoGroup(p, hours...).
//		Filter(func(r stark.Record) bool { return strings.Contains(r.Key, "ERROR") })
//	n, stats, err := errors.Count()
//
// See the examples directory for complete applications and EXPERIMENTS.md
// for the reproduction of the paper's evaluation.
package stark
