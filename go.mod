module stark

go 1.22
