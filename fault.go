package stark

import (
	"time"

	"stark/internal/config"
	"stark/internal/engine"
	"stark/internal/fault"
	"stark/internal/metrics"
	netsim "stark/internal/net"
)

// FaultSchedule is a deterministic, seed-driven fault schedule: executor
// crashes (with optional restart), straggler slowdowns, lost persisted
// blocks, and a per-operation transient storage error probability. Arm one
// with WithFaults; equal schedules on equal seeds replay bit-identically.
type FaultSchedule = fault.Schedule

// ExecutorCrash kills an executor at a virtual time and, when RestartAfter
// is positive, revives it that much later with a cold cache.
type ExecutorCrash = fault.Crash

// StragglerFault slows an executor by Factor for a window of virtual time.
type StragglerFault = fault.Straggler

// BlockLossFault deletes one persisted shuffle or checkpoint block.
type BlockLossFault = fault.BlockLoss

// PartitionFault cuts one executor off from the driver bidirectionally for
// a window of virtual time: heartbeats, task launches, and task results are
// all lost until the partition heals.
type PartitionFault = fault.Partition

// NetDelayFault adds extra latency to every control message for a window of
// virtual time (the delayed-heartbeat fault).
type NetDelayFault = fault.NetDelay

// BlockCorruptFault flips the stored checksum of one persisted shuffle or
// checkpoint block; the next read detects the mismatch and recomputes
// through lineage.
type BlockCorruptFault = fault.BlockCorrupt

// DriverCrashFault crashes the driver process itself at a virtual time,
// discarding all volatile driver state (and optionally tearing TearTail
// bytes off the write-ahead journal, a crash mid-append), then restarts it
// RestartAfter later; the restarted driver replays the journal and resumes.
// Requires WithDriverRecovery.
type DriverCrashFault = fault.DriverCrash

// MemPressureFault shrinks one executor's effective cache capacity to
// Factor times its configured size for a window of virtual time; puts that
// no longer fit degrade to counted cache refusals (compute-and-stream).
type MemPressureFault = fault.MemPressure

// ExecutorOOMFault arms an out-of-memory window on one executor: while
// armed, a cache write the (possibly pressure-shrunk) capacity cannot admit
// fails its task with ErrOOM, which retries and recomputes through lineage.
type ExecutorOOMFault = fault.ExecutorOOM

// NetworkConfig parameterizes the simulated control network: base one-way
// delay, deterministic jitter, a random message-drop probability, and the
// retransmission policy for reliable messages. The zero value is a perfect
// network that delivers synchronously — the pre-network engine behaviour.
type NetworkConfig = netsim.Config

// NetworkStats counts the control messages the simulated network carried,
// dropped, and retransmitted.
type NetworkStats = netsim.Stats

// FaultStats counts the faults an injector actually delivered.
type FaultStats = fault.Stats

// RecoveryStats aggregates the engine's fault-handling counters and the
// measured recovery delays.
type RecoveryStats = metrics.RecoveryMetrics

// CacheStats aggregates the engine's memory-pressure counters: graceful
// cache refusals, pinned-group refusals, OOM task failures, and recomputes
// of previously evicted blocks.
type CacheStats = metrics.CacheMetrics

// ErrInjected marks errors produced by the fault injector.
var ErrInjected = fault.ErrInjected

// ErrOOM marks a task failed because a cache write exceeded its executor's
// capacity inside an armed ExecutorOOMFault window.
var ErrOOM = engine.ErrOOM

// RandomFaultSchedule derives a randomized but fully deterministic fault
// schedule from a seed: 1-3 executor crashes (never executor 0, always
// restarting), up to two straggler windows, up to three block losses, and a
// small transient storage error probability, all inside the horizon.
func RandomFaultSchedule(seed int64, horizon time.Duration, executors int) FaultSchedule {
	return fault.RandomSchedule(seed, horizon, executors)
}

// WithFaults arms a deterministic fault schedule on the engine's virtual
// clock.
func WithFaults(s FaultSchedule) Option {
	return func(c *engine.Config) { c.Faults = s }
}

// WithTaskRetries bounds per-task retry: a failed task is re-attempted up
// to n times with doubling virtual-time backoff starting at backoff.
// n < 0 disables retry (first failure fails the job).
func WithTaskRetries(n int, backoff time.Duration) Option {
	return func(c *engine.Config) {
		c.Recovery.MaxTaskRetries = n
		c.Recovery.RetryBackoff = backoff
	}
}

// WithBlacklist excludes an executor from scheduling for expiry after
// threshold task failures; a successful task afterwards clears the entry.
// threshold < 0 disables blacklisting.
func WithBlacklist(threshold int, expiry time.Duration) Option {
	return func(c *engine.Config) {
		c.Recovery.BlacklistThreshold = threshold
		c.Recovery.BlacklistExpiry = expiry
	}
}

// WithSpeculation enables speculative re-execution of stragglers: once
// quantile of a stage's tasks finished, running tasks expected to exceed
// multiplier times the stage median get a second copy on another executor;
// the first finisher wins.
func WithSpeculation(multiplier, quantile float64) Option {
	return func(c *engine.Config) {
		c.Recovery.Speculation = true
		c.Recovery.SpeculationMultiplier = multiplier
		c.Recovery.SpeculationQuantile = quantile
	}
}

// WithNetwork routes all driver-executor control traffic (task launches,
// task results, heartbeats) through a simulated network with the given
// delay, jitter, drop, and retransmission parameters. Without this option
// the control network is perfect and adds no latency.
func WithNetwork(nc NetworkConfig) Option {
	return func(c *engine.Config) { c.Network = nc }
}

// WithHeartbeat enables heartbeat-based failure detection: executors
// heartbeat the driver every interval over the (simulated) control network;
// the driver suspects an executor after suspectAfter without a heartbeat
// (excluding it from scheduling) and declares it dead after deadAfter
// (bumping its epoch and resubmitting its tasks; stale-epoch results are
// rejected). Pass 0 for any argument to use the calibrated default. Without
// this option the driver learns of failures omnisciently, exactly when they
// happen.
func WithHeartbeat(interval, suspectAfter, deadAfter time.Duration) Option {
	return func(c *engine.Config) {
		c.Heartbeat = config.Heartbeat{
			Enabled:      true,
			Interval:     interval,
			SuspectAfter: suspectAfter,
			DeadAfter:    deadAfter,
		}
	}
}

// WithDriverRecovery makes the driver itself a recoverable fault domain: a
// write-ahead journal records every commit point (namespace registrations,
// group splits and merges, map-output commits, checkpoint completions, job
// lifecycle, blacklist transitions, stream window movement), and a
// DriverCrashFault can kill the driver mid-run — the restarted driver
// replays the journal, re-handshakes the executors under a new incarnation,
// and resumes every in-flight job from its last committed stage.
func WithDriverRecovery() Option {
	return func(c *engine.Config) { c.DriverRecovery = true }
}

// ValidateConfig checks an option set for configuration errors (e.g. a
// heartbeat suspicion timeout at or above the death timeout) without
// building a cluster. NewContext panics on the same errors.
func ValidateConfig(opts ...Option) error {
	cfg := engine.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return engine.Validate(cfg)
}

// WithCachePolicy selects the executor-cache eviction policy: "lru" (the
// default) or "dag", the DAG-aware policy that evicts zero-reference blocks
// first and pins collection peer groups all-or-nothing.
func WithCachePolicy(policy string) Option {
	return func(c *engine.Config) { c.CachePolicy = policy }
}

// RecoveryStats reports the engine's fault-handling counters and measured
// recovery delays so far.
func (c *Context) RecoveryStats() RecoveryStats { return c.eng.Recovery() }

// CacheStats reports the memory-pressure and eviction-policy counters so
// far.
func (c *Context) CacheStats() CacheStats { return c.eng.CacheStats() }

// NetworkStats reports the control-network message counters so far.
func (c *Context) NetworkStats() NetworkStats { return c.eng.Network().Stats() }

// Blacklisted lists the executors currently blacklisted, ascending.
func (c *Context) Blacklisted() []int { return c.eng.Blacklisted() }

// FaultStats reports the faults delivered so far; zero when no schedule is
// armed.
func (c *Context) FaultStats() FaultStats {
	if in := c.eng.Injector(); in != nil {
		return in.Stats()
	}
	return FaultStats{}
}
