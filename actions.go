package stark

import (
	"fmt"
	"sort"
)

// CountByKey counts records per key on the driver, like Spark's
// countByKey action.
func (r *RDD) CountByKey() (map[string]int64, JobStats, error) {
	recs, stats, err := r.ctx.eng.Collect(r.r)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[string]int64)
	for _, rec := range recs {
		out[rec.Key]++
	}
	return out, stats, nil
}

// Take returns up to n records in partition order, like Spark's take. The
// whole dataset is materialized (the engine has no partial evaluation), so
// prefer Count/Collect-driven pipelines for large results.
func (r *RDD) Take(n int) ([]Record, JobStats, error) {
	if n < 0 {
		return nil, JobStats{}, fmt.Errorf("stark: Take(%d): n must be >= 0", n)
	}
	recs, stats, err := r.ctx.eng.Collect(r.r)
	if err != nil {
		return nil, stats, err
	}
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs, stats, nil
}

// First returns the first record; ok is false for an empty dataset.
func (r *RDD) First() (rec Record, ok bool, stats JobStats, err error) {
	recs, stats, err := r.Take(1)
	if err != nil || len(recs) == 0 {
		return Record{}, false, stats, err
	}
	return recs[0], true, stats, nil
}

// Keys collects the distinct keys of the dataset, sorted.
func (r *RDD) Keys() ([]string, JobStats, error) {
	recs, stats, err := r.ctx.eng.Collect(r.r)
	if err != nil {
		return nil, stats, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, rec := range recs {
		if !seen[rec.Key] {
			seen[rec.Key] = true
			out = append(out, rec.Key)
		}
	}
	sort.Strings(out)
	return out, stats, nil
}
