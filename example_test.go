package stark_test

import (
	"fmt"
	"strings"

	"stark"
)

// The basic flow: build a dataset, filter, count. Virtual time elapses on
// the simulated cluster, not the wall clock.
func ExampleContext_Parallelize() {
	ctx := stark.NewContext(stark.WithExecutors(4), stark.WithSeed(1))
	var recs []stark.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, stark.Pair(fmt.Sprintf("user-%02d", i%10), int64(i)))
	}
	data := ctx.Parallelize("events", recs, 4)
	even := data.Filter(func(r stark.Record) bool {
		return strings.HasSuffix(r.Key, "0") // user-00
	})
	n, _, err := even.Count()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(n)
	// Output: 10
}

// Co-locality: register a namespace, load a dataset collection with
// localityPartitionBy, and cogroup across it without any shuffle.
func ExampleContext_CoGroup() {
	ctx := stark.NewContext(stark.WithCoLocality(), stark.WithExecutors(4), stark.WithSeed(1))
	p := stark.NewHashPartitioner(4)
	if err := ctx.RegisterNamespace("hours", p, 1); err != nil {
		fmt.Println("error:", err)
		return
	}
	var hours []*stark.RDD
	for h := 0; h < 3; h++ {
		recs := []stark.Record{
			stark.Pair("alpha", h), stark.Pair("beta", h),
		}
		rdd := ctx.Parallelize(fmt.Sprintf("hour%d", h), recs, 2).
			LocalityPartitionBy(p, "hours").Cache()
		if _, err := rdd.Materialize(); err != nil {
			fmt.Println("error:", err)
			return
		}
		hours = append(hours, rdd)
	}
	cg := ctx.CoGroup(p, hours...)
	recs, stats, err := cg.Collect()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("keys:", len(recs))
	fmt.Println("all tasks local:", stats.LocalityFraction() == 1.0)
	// Output:
	// keys: 2
	// all tasks local: true
}

// ReduceByKey aggregates values per key; with a co-partitioned parent it
// runs as a narrow pass with no shuffle.
func ExampleRDD_ReduceByKey() {
	ctx := stark.NewContext(stark.WithSeed(1))
	recs := []stark.Record{
		stark.Pair("a", int64(1)), stark.Pair("b", int64(10)), stark.Pair("a", int64(2)),
	}
	sums := ctx.Parallelize("d", recs, 2).
		ReduceByKey(stark.NewHashPartitioner(2), func(x, y any) any {
			return x.(int64) + y.(int64)
		})
	out, _, err := sums.Collect()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total := int64(0)
	for _, r := range out {
		total += r.Value.(int64)
	}
	fmt.Println(len(out), total)
	// Output: 2 13
}

// Checkpointing bounds failure recovery: persist an RDD and later jobs
// start from stable storage instead of replaying lineage.
func ExampleRDD_Checkpoint() {
	ctx := stark.NewContext(stark.WithSeed(1))
	r := ctx.Parallelize("d", []stark.Record{stark.Pair("k", 1)}, 1).
		Filter(func(stark.Record) bool { return true }).Cache()
	if _, err := r.Materialize(); err != nil {
		fmt.Println("error:", err)
		return
	}
	r.Checkpoint()
	fmt.Println(r.IsCheckpointed(), ctx.TotalCheckpointBytes() > 0)
	// Output: true true
}
